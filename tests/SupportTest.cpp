// Unit tests for the support module: arena, arena pool, packed domains,
// interner, diagnostics, JSON number ranges.

#include "support/Arena.h"
#include "support/ArenaPool.h"
#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/PackedDomains.h"
#include "support/SourceLoc.h"
#include "support/FlatSet.h"
#include "support/SetInterner.h"
#include "support/StringInterner.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace afl;

namespace {

TEST(Arena, AllocatesAligned) {
  Arena A;
  void *P1 = A.allocate(1, 1);
  void *P8 = A.allocate(8, 8);
  void *P16 = A.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P16) % 16, 0u);
  EXPECT_NE(P1, P8);
  EXPECT_EQ(A.numAllocations(), 3u);
}

TEST(Arena, GrowsBeyondOneSlab) {
  Arena A;
  // Allocate more than the default slab size in chunks.
  for (int I = 0; I != 300; ++I) {
    void *P = A.allocate(1024, 8);
    ASSERT_NE(P, nullptr);
    // Touch the memory to catch bad slabs under sanitizers.
    static_cast<char *>(P)[0] = static_cast<char>(I);
    static_cast<char *>(P)[1023] = static_cast<char>(I);
  }
  EXPECT_GE(A.bytesReserved(), 300u * 1024u);
}

TEST(Arena, CreateConstructsObjects) {
  struct Point {
    int X, Y;
    Point(int X, int Y) : X(X), Y(Y) {}
  };
  Arena A;
  Point *P = A.create<Point>(3, 4);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(Arena, BytesAllocatedCountsRequests) {
  Arena A;
  A.allocate(10, 1);
  A.allocate(100, 8);
  EXPECT_EQ(A.bytesAllocated(), 110u);
  EXPECT_EQ(A.numAllocations(), 2u);
}

TEST(Arena, ResetRetainsLargestSlab) {
  Arena A;
  A.allocate(16, 8); // first slab: the 64 KiB default
  void *Big = A.allocate(1 << 20, 8);
  ASSERT_NE(Big, nullptr);
  EXPECT_GE(A.numSlabs(), 2u);
  size_t Largest = 1u << 20;

  A.reset();
  EXPECT_EQ(A.numSlabs(), 1u);
  EXPECT_GE(A.bytesReserved(), Largest);
  EXPECT_LT(A.bytesReserved(), 2 * Largest);
  EXPECT_EQ(A.numAllocations(), 0u);
  EXPECT_EQ(A.bytesAllocated(), 0u);

  // The retained slab serves the next tenant without growing.
  size_t Reserved = A.bytesReserved();
  void *P = A.allocate(Largest / 2, 8);
  static_cast<char *>(P)[0] = 1; // touch under sanitizers
  EXPECT_EQ(A.bytesReserved(), Reserved);
  EXPECT_EQ(A.numSlabs(), 1u);
}

TEST(Arena, ResetOfEmptyArenaIsHarmless) {
  Arena A;
  A.reset();
  EXPECT_EQ(A.numSlabs(), 0u);
  EXPECT_EQ(A.bytesReserved(), 0u);
  void *P = A.allocate(8, 8);
  EXPECT_NE(P, nullptr);
}

TEST(Arena, MoveTransfersStorage) {
  Arena A;
  void *P = A.allocate(64, 8);
  std::memset(P, 0x5a, 64);
  Arena B = std::move(A);
  EXPECT_EQ(A.numSlabs(), 0u);
  EXPECT_EQ(A.bytesReserved(), 0u);
  EXPECT_EQ(B.numAllocations(), 1u);
  EXPECT_EQ(static_cast<unsigned char *>(P)[63], 0x5au);
  // The moved-from arena is reusable.
  EXPECT_NE(A.allocate(8, 8), nullptr);

  Arena C;
  C.allocate(8, 8);
  C = std::move(B);
  EXPECT_EQ(C.numAllocations(), 1u);
}

TEST(ArenaPool, MissThenHitRoundtrip) {
  ArenaPool P;
  Arena A = P.acquire();
  A.allocate(1 << 18, 8);
  size_t Reserved = A.bytesReserved();
  P.release(std::move(A));

  ArenaPool::Stats S = P.stats();
  EXPECT_EQ(S.Checkouts, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Returns, 1u);
  EXPECT_EQ(S.Pooled, 1u);
  EXPECT_GT(S.RetainedBytes, 0u);

  Arena B = P.acquire();
  EXPECT_EQ(P.stats().Hits, 1u);
  // release() reset the arena but kept its largest slab for reuse.
  EXPECT_EQ(B.numAllocations(), 0u);
  EXPECT_GE(B.bytesReserved(), Reserved);
}

TEST(ArenaPool, AcquirePrefersLargestClass) {
  ArenaPool P;
  Arena Small = P.acquire();
  Small.allocate(16, 8); // one default 64 KiB slab
  Arena Big = P.acquire();
  Big.allocate(1 << 20, 8);
  P.release(std::move(Small));
  P.release(std::move(Big));

  Arena First = P.acquire();
  EXPECT_GE(First.bytesReserved(), 1u << 20)
      << "the pool must hand out its largest arena first";
  Arena Second = P.acquire();
  EXPECT_LT(Second.bytesReserved(), 1u << 20);
}

TEST(ArenaPool, CapDiscardsExcessReturns) {
  ArenaPool P(1);
  Arena A = P.acquire(), B = P.acquire();
  A.allocate(16, 8);
  B.allocate(16, 8);
  P.release(std::move(A));
  P.release(std::move(B));
  ArenaPool::Stats S = P.stats();
  EXPECT_EQ(S.Returns, 2u);
  EXPECT_EQ(S.Discarded, 1u);
  EXPECT_EQ(S.Pooled, 1u);
}

TEST(ArenaPool, ClearDropsRetainedArenas) {
  ArenaPool P;
  Arena A = P.acquire();
  A.allocate(16, 8);
  P.release(std::move(A));
  EXPECT_EQ(P.stats().Pooled, 1u);
  P.clear();
  EXPECT_EQ(P.stats().Pooled, 0u);
  EXPECT_EQ(P.stats().RetainedBytes, 0u);
}

TEST(ArenaPool, ConcurrentCheckoutUnderThreadPool) {
  ArenaPool P;
  ThreadPool Workers(4);
  Workers.parallelFor(64, 0, [&P](size_t I) {
    Arena A = P.acquire();
    char *Bytes = static_cast<char *>(A.allocate(4096, 8));
    std::memset(Bytes, static_cast<int>(I), 4096);
    P.release(std::move(A));
  });
  ArenaPool::Stats S = P.stats();
  EXPECT_EQ(S.Checkouts, 64u);
  EXPECT_EQ(S.Hits + S.Misses, 64u);
  EXPECT_EQ(S.Returns, 64u);
  EXPECT_EQ(S.Pooled + S.Discarded, 64u - S.Hits);
}

TEST(PooledArena, ReturnsToGlobalPoolOnDestruction) {
  bool WasEnabled = ArenaPool::globalEnabled();
  ArenaPool::setGlobalEnabled(true);
  ArenaPool::Stats Before = ArenaPool::global().stats();
  {
    PooledArena A;
    A.allocate(128, 8);
    EXPECT_EQ(ArenaPool::global().stats().Checkouts, Before.Checkouts + 1);
  }
  EXPECT_EQ(ArenaPool::global().stats().Returns, Before.Returns + 1);
  ArenaPool::setGlobalEnabled(WasEnabled);
}

TEST(PooledArena, DisabledModeUsesPrivateArena) {
  bool WasEnabled = ArenaPool::globalEnabled();
  ArenaPool::setGlobalEnabled(false);
  ArenaPool::Stats Before = ArenaPool::global().stats();
  {
    PooledArena A;
    struct Point {
      int X, Y;
    };
    Point *P = A.create<Point>();
    P->X = 3;
    EXPECT_EQ(P->X, 3);
  }
  ArenaPool::Stats After = ArenaPool::global().stats();
  EXPECT_EQ(After.Checkouts, Before.Checkouts);
  EXPECT_EQ(After.Returns, Before.Returns);
  ArenaPool::setGlobalEnabled(WasEnabled);
}

TEST(PooledArena, MoveDoesNotDoubleReturn) {
  bool WasEnabled = ArenaPool::globalEnabled();
  ArenaPool::setGlobalEnabled(true);
  ArenaPool::Stats Before = ArenaPool::global().stats();
  {
    PooledArena A;
    A.allocate(16, 8);
    PooledArena B = std::move(A);
    PooledArena C;
    C = std::move(B);
  } // exactly one lease is live; exactly one return
  EXPECT_EQ(ArenaPool::global().stats().Returns, Before.Returns + 2)
      << "one return for the moved lease, one for C's displaced lease";
  ArenaPool::setGlobalEnabled(WasEnabled);
}

TEST(StringInterner, InternsAndDeduplicates) {
  StringInterner SI;
  Symbol A = SI.intern("foo");
  Symbol B = SI.intern("bar");
  Symbol C = SI.intern("foo");
  EXPECT_TRUE(A.isValid());
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.text(A), "foo");
  EXPECT_EQ(SI.text(B), "bar");
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInterner, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
}

TEST(StringInterner, ManyStringsKeepStableText) {
  // Regression guard for the index-into-storage dangling-view bug: views
  // must survive container growth.
  StringInterner SI;
  std::vector<Symbol> Syms;
  for (int I = 0; I != 2000; ++I)
    Syms.push_back(SI.intern("sym" + std::to_string(I)));
  for (int I = 0; I != 2000; ++I) {
    EXPECT_EQ(SI.text(Syms[I]), "sym" + std::to_string(I));
    EXPECT_EQ(SI.intern("sym" + std::to_string(I)), Syms[I]);
  }
}

TEST(StringInterner, SharedArenaStoresBytes) {
  Arena A;
  size_t Before = A.bytesAllocated();
  StringInterner SI(A);
  Symbol Foo = SI.intern("foo");
  Symbol Again = SI.intern("foo");
  EXPECT_EQ(Foo, Again);
  EXPECT_EQ(SI.text(Foo), "foo");
  EXPECT_EQ(A.bytesAllocated(), Before + 3)
      << "interned bytes land in the shared arena, deduplicated";
}

TEST(PackedDomains, ThreeBitRoundtripAcrossWordBoundaries) {
  // 21 three-bit lanes fit a 64-bit word; exercise sizes straddling the
  // 21- and 42-lane boundaries.
  for (size_t N : {1u, 20u, 21u, 22u, 41u, 42u, 43u, 100u}) {
    support::StateDomains D(N, 7);
    for (size_t I = 0; I != N; ++I)
      D.set(I, static_cast<uint8_t>(1 + I % 7)); // keep non-zero
    for (size_t I = 0; I != N; ++I) {
      EXPECT_EQ(D.get(I), 1 + I % 7) << "N=" << N << " I=" << I;
      EXPECT_EQ(D[I], D.get(I));
    }
    EXPECT_EQ(D.size(), N);
  }
}

TEST(PackedDomains, TwoBitRoundtripAcrossWordBoundaries) {
  for (size_t N : {1u, 31u, 32u, 33u, 64u, 65u}) {
    support::BoolDomains B(N, 3);
    for (size_t I = 0; I != N; ++I)
      B.set(I, static_cast<uint8_t>(1 + I % 3));
    for (size_t I = 0; I != N; ++I)
      EXPECT_EQ(B.get(I), 1 + I % 3) << "N=" << N << " I=" << I;
  }
}

TEST(PackedDomains, SetDoesNotDisturbNeighbors) {
  support::StateDomains D(45, 7);
  D.set(21, 2); // first lane of the second word
  D.set(20, 5); // last lane of the first word
  EXPECT_EQ(D.get(19), 7);
  EXPECT_EQ(D.get(20), 5);
  EXPECT_EQ(D.get(21), 2);
  EXPECT_EQ(D.get(22), 7);
}

TEST(PackedDomains, PushBackAndUnpackPackRoundtrip) {
  support::StateDomains D;
  std::vector<uint8_t> Expected;
  for (size_t I = 0; I != 50; ++I) {
    uint8_t V = static_cast<uint8_t>(1 + (I * 3) % 7);
    D.push_back(V);
    Expected.push_back(V);
  }
  EXPECT_EQ(D.unpack(), Expected);
  EXPECT_EQ(support::StateDomains::pack(Expected), D);
}

TEST(PackedDomains, EqualityIsValueEquality) {
  support::BoolDomains A(40, 3), B(40, 3);
  EXPECT_EQ(A, B);
  B.set(39, 1);
  EXPECT_NE(A, B);
  B.set(39, 3);
  EXPECT_EQ(A, B);
  support::BoolDomains Shorter(39, 3);
  EXPECT_NE(A, Shorter);
}

TEST(PackedDomains, HasZeroEntryScansEveryLane) {
  for (size_t N : {1u, 21u, 22u, 64u}) {
    support::StateDomains D(N, 7);
    EXPECT_FALSE(D.hasZeroEntry()) << "N=" << N;
    for (size_t I : {size_t(0), N / 2, N - 1}) {
      support::StateDomains E = D;
      E.set(I, 0);
      EXPECT_TRUE(E.hasZeroEntry()) << "N=" << N << " I=" << I;
    }
  }
  support::StateDomains Empty;
  EXPECT_FALSE(Empty.hasZeroEntry());
}

TEST(PackedDomains, DefaultAnyToFalseCollapsesOnlyAny) {
  // BAny (0b11) lanes collapse to BFalse (0b01); decided lanes keep
  // their value. Spans a word boundary (32 two-bit lanes per word).
  support::BoolDomains B(70, 3);
  B.set(0, 2);  // BTrue
  B.set(31, 1); // BFalse, last lane of word 0
  B.set(32, 2); // BTrue, first lane of word 1
  B.defaultAnyToFalse();
  EXPECT_EQ(B.get(0), 2);
  EXPECT_EQ(B.get(31), 1);
  EXPECT_EQ(B.get(32), 2);
  for (size_t I : {size_t(1), size_t(30), size_t(33), size_t(69)})
    EXPECT_EQ(B.get(I), 1) << "I=" << I;
}

TEST(PackedDomains, AssignReusesStorage) {
  support::BoolDomains B(10, 3);
  B.assign(40, 2);
  EXPECT_EQ(B.size(), 40u);
  for (size_t I = 0; I != 40; ++I)
    EXPECT_EQ(B.get(I), 2);
  B.clear();
  EXPECT_EQ(B.size(), 0u);
  EXPECT_TRUE(B.empty());
}

TEST(PackedDomains, SingleBitFlags) {
  support::PackedBits F(130, 0);
  F.set(0, 1);
  F.set(63, 1);
  F.set(64, 1);
  F.set(129, 1);
  EXPECT_EQ(F.get(0), 1);
  EXPECT_EQ(F.get(1), 0);
  EXPECT_EQ(F.get(63), 1);
  EXPECT_EQ(F.get(64), 1);
  EXPECT_EQ(F.get(128), 0);
  EXPECT_EQ(F.get(129), 1);
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 4), "boom");
  D.note(SourceLoc(), "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.numErrors(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
  EXPECT_NE(D.str().find("3:4: error: boom"), std::string::npos);
  EXPECT_NE(D.str().find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(D.str().find("<unknown>: note: context"), std::string::npos);
}

TEST(SourceLoc, Rendering) {
  EXPECT_EQ(SourceLoc(7, 12).str(), "7:12");
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_FALSE(SourceLoc().isValid());
}

TEST(FlatSet, InsertKeepsSortedUnique) {
  FlatSet<uint32_t> S;
  EXPECT_TRUE(S.insert(5));
  EXPECT_TRUE(S.insert(1));
  EXPECT_TRUE(S.insert(9));
  EXPECT_FALSE(S.insert(5)); // duplicate
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 1u);
  EXPECT_EQ(S[1], 5u);
  EXPECT_EQ(S[2], 9u);
  EXPECT_TRUE(S.contains(9));
  EXPECT_FALSE(S.contains(2));
  EXPECT_EQ(S.indexOf(5), 1u);
  EXPECT_EQ(S.indexOf(2), FlatSet<uint32_t>::npos);
}

TEST(FlatSet, InsertPosTracksParallelArrays) {
  FlatSet<uint32_t> S;
  auto [P1, I1] = S.insertPos(10);
  EXPECT_TRUE(I1);
  EXPECT_EQ(P1, 0u);
  auto [P2, I2] = S.insertPos(5);
  EXPECT_TRUE(I2);
  EXPECT_EQ(P2, 0u); // displaces 10
  auto [P3, I3] = S.insertPos(10);
  EXPECT_FALSE(I3);
  EXPECT_EQ(P3, 1u);
}

TEST(FlatSet, UnionWithReportsGrowth) {
  FlatSet<uint32_t> A, B;
  for (uint32_t X : {1u, 3u, 5u})
    A.insert(X);
  for (uint32_t X : {3u, 4u})
    B.insert(X);
  EXPECT_TRUE(A.unionWith(B));
  ASSERT_EQ(A.size(), 4u);
  EXPECT_FALSE(A.unionWith(B)); // B now a subset
  FlatSet<uint32_t> Tail;
  Tail.insert(100); // beyond A's max: the append fast path
  EXPECT_TRUE(A.unionWith(Tail));
  EXPECT_EQ(A[4], 100u);
}

TEST(FlatSet, FromSortedWraps) {
  FlatSet<uint32_t> S = FlatSet<uint32_t>::fromSorted({2, 4, 6});
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.contains(4));
}

TEST(SetInterner, EmptyIsIdZero) {
  SetInterner<uint32_t> I;
  EXPECT_EQ(I.intern(FlatSet<uint32_t>()), SetInterner<uint32_t>::Empty);
  EXPECT_TRUE(I.get(SetInterner<uint32_t>::Empty).empty());
  EXPECT_EQ(I.size(), 1u);
}

TEST(SetInterner, InternDeduplicates) {
  SetInterner<uint32_t> I;
  auto A = I.single(7);
  auto B = I.single(7);
  EXPECT_EQ(A, B);
  auto C = I.single(8);
  EXPECT_NE(A, C);
  EXPECT_EQ(I.size(), 3u); // empty, {7}, {8}
}

TEST(SetInterner, UnionIsMemoizedAndCorrect) {
  SetInterner<uint32_t> I;
  auto A = I.single(1);
  auto B = I.single(2);
  auto U1 = I.unionSets(A, B);
  auto U2 = I.unionSets(B, A); // commutative, cached
  EXPECT_EQ(U1, U2);
  EXPECT_EQ(I.get(U1).size(), 2u);
  EXPECT_EQ(I.unionSets(U1, A), U1);      // A subset of U1
  EXPECT_EQ(I.unionSets(A, A), A);        // idempotent
  EXPECT_EQ(I.unionSets(A, SetInterner<uint32_t>::Empty), A);
}

TEST(SetInterner, InsertById) {
  SetInterner<uint32_t> I;
  auto A = I.single(1);
  auto B = I.insert(A, 2);
  EXPECT_NE(A, B);
  EXPECT_EQ(I.get(B).size(), 2u);
  EXPECT_EQ(I.insert(B, 1), B); // already present
  EXPECT_EQ(I.insert(B, 2), B);
  // The memo returns the same id for the same (set, element) pair.
  EXPECT_EQ(I.insert(A, 2), B);
}

//===----------------------------------------------------------------------===//
// JSON number ranges: out-of-range integer literals are parse errors,
// never silent saturation (the strtoll/ERANGE regression).
//===----------------------------------------------------------------------===//

TEST(JsonNumbers, Int64BoundsParseExactly) {
  json::Value V;
  std::string E;
  ASSERT_TRUE(json::parseJson("9223372036854775807", V, E)) << E;
  ASSERT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), INT64_MAX);
  ASSERT_TRUE(json::parseJson("-9223372036854775808", V, E)) << E;
  ASSERT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), INT64_MIN);
}

TEST(JsonNumbers, OutOfRangeIntegersAreParseErrors) {
  // One past each bound, and far past: all must fail cleanly rather than
  // saturate to INT64_MAX/MIN or lose precision as a double.
  const char *Bad[] = {
      "9223372036854775808",
      "-9223372036854775809",
      "123456789012345678901234567890",
      "-123456789012345678901234567890",
      "{\"id\":99999999999999999999}",
  };
  for (const char *Text : Bad) {
    json::Value V;
    std::string E;
    EXPECT_FALSE(json::parseJson(Text, V, E)) << Text;
    EXPECT_NE(E.find("out of range"), std::string::npos) << Text << ": " << E;
  }
}

TEST(JsonNumbers, DoublesStillCoverTheWideRange) {
  // Non-integral syntax keeps its double semantics, range errors and all.
  json::Value V;
  std::string E;
  ASSERT_TRUE(json::parseJson("9.223372036854776e18", V, E)) << E;
  EXPECT_FALSE(V.isInt());
  EXPECT_GT(V.asDouble(), 9.2e18);
  ASSERT_TRUE(json::parseJson("1e400", V, E)) << E; // strtod: +inf
  EXPECT_FALSE(V.isInt());
}

} // namespace
