// Unit tests for the support module: arena, interner, diagnostics.

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(Arena, AllocatesAligned) {
  Arena A;
  void *P1 = A.allocate(1, 1);
  void *P8 = A.allocate(8, 8);
  void *P16 = A.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P16) % 16, 0u);
  EXPECT_NE(P1, P8);
  EXPECT_EQ(A.numAllocations(), 3u);
}

TEST(Arena, GrowsBeyondOneSlab) {
  Arena A;
  // Allocate more than the default slab size in chunks.
  for (int I = 0; I != 300; ++I) {
    void *P = A.allocate(1024, 8);
    ASSERT_NE(P, nullptr);
    // Touch the memory to catch bad slabs under sanitizers.
    static_cast<char *>(P)[0] = static_cast<char>(I);
    static_cast<char *>(P)[1023] = static_cast<char>(I);
  }
  EXPECT_GE(A.bytesReserved(), 300u * 1024u);
}

TEST(Arena, CreateConstructsObjects) {
  struct Point {
    int X, Y;
    Point(int X, int Y) : X(X), Y(Y) {}
  };
  Arena A;
  Point *P = A.create<Point>(3, 4);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(StringInterner, InternsAndDeduplicates) {
  StringInterner SI;
  Symbol A = SI.intern("foo");
  Symbol B = SI.intern("bar");
  Symbol C = SI.intern("foo");
  EXPECT_TRUE(A.isValid());
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.text(A), "foo");
  EXPECT_EQ(SI.text(B), "bar");
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInterner, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
}

TEST(StringInterner, ManyStringsKeepStableText) {
  // Regression guard for the index-into-storage dangling-view bug: views
  // must survive container growth.
  StringInterner SI;
  std::vector<Symbol> Syms;
  for (int I = 0; I != 2000; ++I)
    Syms.push_back(SI.intern("sym" + std::to_string(I)));
  for (int I = 0; I != 2000; ++I) {
    EXPECT_EQ(SI.text(Syms[I]), "sym" + std::to_string(I));
    EXPECT_EQ(SI.intern("sym" + std::to_string(I)), Syms[I]);
  }
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 4), "boom");
  D.note(SourceLoc(), "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.numErrors(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
  EXPECT_NE(D.str().find("3:4: error: boom"), std::string::npos);
  EXPECT_NE(D.str().find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(D.str().find("<unknown>: note: context"), std::string::npos);
}

TEST(SourceLoc, Rendering) {
  EXPECT_EQ(SourceLoc(7, 12).str(), "7:12");
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_FALSE(SourceLoc().isValid());
}

} // namespace
