// Unit tests for the support module: arena, interner, diagnostics.

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/SourceLoc.h"
#include "support/FlatSet.h"
#include "support/SetInterner.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(Arena, AllocatesAligned) {
  Arena A;
  void *P1 = A.allocate(1, 1);
  void *P8 = A.allocate(8, 8);
  void *P16 = A.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P16) % 16, 0u);
  EXPECT_NE(P1, P8);
  EXPECT_EQ(A.numAllocations(), 3u);
}

TEST(Arena, GrowsBeyondOneSlab) {
  Arena A;
  // Allocate more than the default slab size in chunks.
  for (int I = 0; I != 300; ++I) {
    void *P = A.allocate(1024, 8);
    ASSERT_NE(P, nullptr);
    // Touch the memory to catch bad slabs under sanitizers.
    static_cast<char *>(P)[0] = static_cast<char>(I);
    static_cast<char *>(P)[1023] = static_cast<char>(I);
  }
  EXPECT_GE(A.bytesReserved(), 300u * 1024u);
}

TEST(Arena, CreateConstructsObjects) {
  struct Point {
    int X, Y;
    Point(int X, int Y) : X(X), Y(Y) {}
  };
  Arena A;
  Point *P = A.create<Point>(3, 4);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(StringInterner, InternsAndDeduplicates) {
  StringInterner SI;
  Symbol A = SI.intern("foo");
  Symbol B = SI.intern("bar");
  Symbol C = SI.intern("foo");
  EXPECT_TRUE(A.isValid());
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.text(A), "foo");
  EXPECT_EQ(SI.text(B), "bar");
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInterner, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
}

TEST(StringInterner, ManyStringsKeepStableText) {
  // Regression guard for the index-into-storage dangling-view bug: views
  // must survive container growth.
  StringInterner SI;
  std::vector<Symbol> Syms;
  for (int I = 0; I != 2000; ++I)
    Syms.push_back(SI.intern("sym" + std::to_string(I)));
  for (int I = 0; I != 2000; ++I) {
    EXPECT_EQ(SI.text(Syms[I]), "sym" + std::to_string(I));
    EXPECT_EQ(SI.intern("sym" + std::to_string(I)), Syms[I]);
  }
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 4), "boom");
  D.note(SourceLoc(), "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.numErrors(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
  EXPECT_NE(D.str().find("3:4: error: boom"), std::string::npos);
  EXPECT_NE(D.str().find("1:2: warning: watch out"), std::string::npos);
  EXPECT_NE(D.str().find("<unknown>: note: context"), std::string::npos);
}

TEST(SourceLoc, Rendering) {
  EXPECT_EQ(SourceLoc(7, 12).str(), "7:12");
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_FALSE(SourceLoc().isValid());
}

TEST(FlatSet, InsertKeepsSortedUnique) {
  FlatSet<uint32_t> S;
  EXPECT_TRUE(S.insert(5));
  EXPECT_TRUE(S.insert(1));
  EXPECT_TRUE(S.insert(9));
  EXPECT_FALSE(S.insert(5)); // duplicate
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 1u);
  EXPECT_EQ(S[1], 5u);
  EXPECT_EQ(S[2], 9u);
  EXPECT_TRUE(S.contains(9));
  EXPECT_FALSE(S.contains(2));
  EXPECT_EQ(S.indexOf(5), 1u);
  EXPECT_EQ(S.indexOf(2), FlatSet<uint32_t>::npos);
}

TEST(FlatSet, InsertPosTracksParallelArrays) {
  FlatSet<uint32_t> S;
  auto [P1, I1] = S.insertPos(10);
  EXPECT_TRUE(I1);
  EXPECT_EQ(P1, 0u);
  auto [P2, I2] = S.insertPos(5);
  EXPECT_TRUE(I2);
  EXPECT_EQ(P2, 0u); // displaces 10
  auto [P3, I3] = S.insertPos(10);
  EXPECT_FALSE(I3);
  EXPECT_EQ(P3, 1u);
}

TEST(FlatSet, UnionWithReportsGrowth) {
  FlatSet<uint32_t> A, B;
  for (uint32_t X : {1u, 3u, 5u})
    A.insert(X);
  for (uint32_t X : {3u, 4u})
    B.insert(X);
  EXPECT_TRUE(A.unionWith(B));
  ASSERT_EQ(A.size(), 4u);
  EXPECT_FALSE(A.unionWith(B)); // B now a subset
  FlatSet<uint32_t> Tail;
  Tail.insert(100); // beyond A's max: the append fast path
  EXPECT_TRUE(A.unionWith(Tail));
  EXPECT_EQ(A[4], 100u);
}

TEST(FlatSet, FromSortedWraps) {
  FlatSet<uint32_t> S = FlatSet<uint32_t>::fromSorted({2, 4, 6});
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.contains(4));
}

TEST(SetInterner, EmptyIsIdZero) {
  SetInterner<uint32_t> I;
  EXPECT_EQ(I.intern(FlatSet<uint32_t>()), SetInterner<uint32_t>::Empty);
  EXPECT_TRUE(I.get(SetInterner<uint32_t>::Empty).empty());
  EXPECT_EQ(I.size(), 1u);
}

TEST(SetInterner, InternDeduplicates) {
  SetInterner<uint32_t> I;
  auto A = I.single(7);
  auto B = I.single(7);
  EXPECT_EQ(A, B);
  auto C = I.single(8);
  EXPECT_NE(A, C);
  EXPECT_EQ(I.size(), 3u); // empty, {7}, {8}
}

TEST(SetInterner, UnionIsMemoizedAndCorrect) {
  SetInterner<uint32_t> I;
  auto A = I.single(1);
  auto B = I.single(2);
  auto U1 = I.unionSets(A, B);
  auto U2 = I.unionSets(B, A); // commutative, cached
  EXPECT_EQ(U1, U2);
  EXPECT_EQ(I.get(U1).size(), 2u);
  EXPECT_EQ(I.unionSets(U1, A), U1);      // A subset of U1
  EXPECT_EQ(I.unionSets(A, A), A);        // idempotent
  EXPECT_EQ(I.unionSets(A, SetInterner<uint32_t>::Empty), A);
}

TEST(SetInterner, InsertById) {
  SetInterner<uint32_t> I;
  auto A = I.single(1);
  auto B = I.insert(A, 2);
  EXPECT_NE(A, B);
  EXPECT_EQ(I.get(B).size(), 2u);
  EXPECT_EQ(I.insert(B, 1), B); // already present
  EXPECT_EQ(I.insert(B, 2), B);
  // The memo returns the same id for the same (set, element) pair.
  EXPECT_EQ(I.insert(A, 2), B);
}

} // namespace
