// Unit tests for completions: conservative structure, A-F-L op placement
// on the paper's examples (Fig. 1b), and completion validity.

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "completion/Conservative.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "regions/Validator.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::regions;

namespace {

std::unique_ptr<RegionProgram> infer(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success) << Diags.str();
  auto P = inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

/// Counts ops of kind \p K on region \p R anywhere in \p C (~0u = any).
unsigned countOps(const Completion &C, COpKind K, RegionVarId R = ~0u) {
  unsigned N = 0;
  auto Scan = [&](const std::unordered_map<RNodeId, std::vector<COp>> &M) {
    for (const auto &[Node, Ops] : M)
      for (const COp &Op : Ops)
        if (Op.Kind == K && (R == ~0u || Op.Region == R))
          ++N;
  };
  Scan(C.Pre);
  Scan(C.Post);
  Scan(C.FreeApp);
  return N;
}

TEST(Conservative, AllocFreePairsPerBoundRegion) {
  auto P = infer("let x = (1, 2) in fst x end");
  Completion C = completion::conservativeCompletion(*P);
  unsigned Bound = 0;
  for (const RExpr *N : P->nodes())
    Bound += static_cast<unsigned>(N->boundRegions().size());
  EXPECT_EQ(countOps(C, COpKind::AllocBefore),
            Bound + P->GlobalRegions.size());
  EXPECT_EQ(countOps(C, COpKind::FreeAfter), Bound);
  EXPECT_EQ(countOps(C, COpKind::FreeApp), 0u);
  EXPECT_TRUE(validateCompletion(*P, C).empty());
}

TEST(Afl, Example11MatchesPaperFig1b) {
  // On Example 1.1 the solver reproduces the paper's optimal completion:
  //   * the closure's region is freed by free_app;
  //   * the region of the dead "3" is freed immediately (a free_after on
  //     the literal itself);
  //   * the z-pair's region is allocated only after the first component
  //     is evaluated (i.e. NOT at its letregion).
  auto P = infer(programs::example11Source());
  completion::AflStats Stats;
  Completion C = completion::aflCompletion(*P, &Stats);
  ASSERT_TRUE(Stats.Solved);
  EXPECT_TRUE(validateCompletion(*P, C).empty());

  EXPECT_EQ(countOps(C, COpKind::FreeApp), 1u);

  // Find the literal 3 and check it has a free_after of its own region.
  const RExpr *Three = nullptr;
  for (const RExpr *N : P->nodes()) {
    if (const auto *I = dyn_cast<RIntExpr>(N))
      if (I->value() == 3)
        Three = N;
  }
  ASSERT_NE(Three, nullptr);
  const std::vector<COp> *Post = C.postOps(Three->id());
  ASSERT_NE(Post, nullptr);
  bool FreesOwnRegion = false;
  for (const COp &Op : *Post)
    FreesOwnRegion |= Op.Kind == COpKind::FreeAfter &&
                      Op.Region == Three->writeRegion();
  EXPECT_TRUE(FreesOwnRegion)
      << "the dead 3 should be freed immediately after creation";
}

TEST(Afl, OpsOnlyWhereChosen) {
  auto P = infer(programs::facSource(4));
  completion::AflStats Stats;
  Completion C = completion::aflCompletion(*P, &Stats);
  ASSERT_TRUE(Stats.Solved);
  EXPECT_TRUE(validateCompletion(*P, C).empty());
  // The completion must contain at least one alloc (values are written)
  // and at least one free (locals die).
  EXPECT_GE(countOps(C, COpKind::AllocBefore), 1u);
  EXPECT_GE(countOps(C, COpKind::FreeAfter) + countOps(C, COpKind::FreeApp),
            1u);
}

TEST(Afl, StatsPopulated) {
  auto P = infer(programs::fibSource(5));
  completion::AflStats Stats;
  completion::aflCompletion(*P, &Stats);
  EXPECT_TRUE(Stats.Solved);
  EXPECT_GE(Stats.ClosurePasses, 1u);
  EXPECT_GT(Stats.NumContexts, 0u);
  EXPECT_GT(Stats.NumStateVars, 0u);
  EXPECT_GT(Stats.NumBoolVars, 0u);
  EXPECT_GT(Stats.NumConstraints, 0u);
  EXPECT_GT(Stats.SolverChoices, 0u);
}

TEST(Afl, CompletionValidatesOnCorpus) {
  for (const programs::BenchProgram &BP : programs::smallCorpus()) {
    auto P = infer(BP.Source);
    completion::AflStats Stats;
    Completion C = completion::aflCompletion(*P, &Stats);
    EXPECT_TRUE(Stats.Solved) << BP.Name;
    std::vector<std::string> Errors = validateCompletion(*P, C);
    EXPECT_TRUE(Errors.empty()) << BP.Name << ": " << Errors.front();
  }
}

TEST(Completion, NumOpsCounts) {
  Completion C;
  EXPECT_EQ(C.numOps(), 0u);
  C.Pre[0].push_back({COpKind::AllocBefore, 1});
  C.Post[0].push_back({COpKind::FreeAfter, 1});
  C.FreeApp[2].push_back({COpKind::FreeApp, 3});
  EXPECT_EQ(C.numOps(), 3u);
  EXPECT_NE(C.preOps(0), nullptr);
  EXPECT_EQ(C.preOps(1), nullptr);
}

TEST(Completion, Spellings) {
  EXPECT_STREQ(spelling(COpKind::AllocBefore), "alloc_before");
  EXPECT_STREQ(spelling(COpKind::FreeBefore), "free_before");
  EXPECT_STREQ(spelling(COpKind::AllocAfter), "alloc_after");
  EXPECT_STREQ(spelling(COpKind::FreeAfter), "free_after");
  EXPECT_STREQ(spelling(COpKind::FreeApp), "free_app");
}

} // namespace
