// Scaling guards: the full analysis must stay fast on programs an order
// of magnitude larger than the corpus (§7: constraint generation and
// solving run in low-order polynomial time; the solver's border-choice
// search is incremental, not a per-choice rescan).

#include "driver/Pipeline.h"

#include <chrono>
#include <gtest/gtest.h>

using namespace afl;

namespace {

std::string chainProgram(int K) {
  std::string Src;
  for (int I = 0; I != K; ++I) {
    std::string F = "f" + std::to_string(I);
    std::string N = "n" + std::to_string(I);
    Src += "letrec " + F + " " + N + " = if " + N + " <= 0 then 0 else " +
           N + " + " + F + " (" + N + " - 1) in ";
  }
  Src += "let acc = 0 in ";
  for (int I = 0; I != K; ++I)
    Src += "let acc = acc + f" + std::to_string(I) + " 3 in ";
  Src += "acc";
  for (int I = 0; I != 2 * K + 1; ++I)
    Src += " end";
  return Src;
}

TEST(Scaling, SixtyFourFunctionsAnalyzeQuickly) {
  auto Start = std::chrono::steady_clock::now();
  driver::PipelineOptions Options;
  Options.SkipRuns = true;
  driver::PipelineResult R = driver::runPipeline(chainProgram(64), Options);
  auto Elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - Start);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_TRUE(R.Analysis.Solved);
  // Generous bound (was ~0.5s after the incremental-candidate fix; the
  // pre-fix full-rescan solver took ~26s).
  EXPECT_LT(Elapsed.count(), 15);
}

TEST(Scaling, LargeChainRunsCorrectly) {
  driver::PipelineResult R = driver::runPipeline(chainProgram(24));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  // Each f_i(3) = 3+2+1 = 6; 24 of them.
  EXPECT_EQ(R.Afl.ResultText, std::to_string(24 * 6));
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
}

TEST(Scaling, DeepListProgram) {
  // A 400-element list built and consumed: deep recursion within the
  // depth guard, thousands of memory operations.
  driver::PipelineResult R = driver::runPipeline(
      "letrec fromto n = if n = 0 then nil else n :: fromto (n - 1) in "
      "letrec sum l = if null l then 0 else hd l + sum (tl l) in "
      "sum (fromto 400) end end");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Afl.ResultText, "80200");
}

} // namespace
