// Differential property test for the closure-analysis fixpoint: on the
// builtin corpus and a large random-program sweep, the dependency-tracked
// worklist (production mode) and the whole-program restart fixpoint
// (reference mode, the seed algorithm) must be result-identical — the
// same contexts and closures, byte-identical generated constraint
// systems, identical solver domains, and identical extracted completions.

#include "ast/ASTContext.h"
#include "closure/ClosureAnalysis.h"
#include "completion/AflCompletion.h"
#include "constraints/ConstraintGen.h"
#include "constraints/ConstraintPrinter.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"
#include "regions/RegionInference.h"
#include "regions/RegionPrinter.h"
#include "solver/Solver.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

#include <map>

using namespace afl;
using namespace afl::constraints;

namespace {

std::unique_ptr<regions::RegionProgram>
frontend(const std::string &Source, ast::ASTContext &Ctx, const char *Label) {
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Label;
  if (!E)
    return nullptr;
  types::TypedProgram Typed = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(Typed.Success) << Label;
  if (!Typed.Success)
    return nullptr;
  auto Prog = regions::inferRegions(E, Ctx, Typed, Diags);
  EXPECT_NE(Prog, nullptr) << Label;
  return Prog;
}

/// Runs closure analysis + constraint generation + solve + completion in
/// all three fixpoint modes — sequential worklist (production default),
/// whole-program restart (reference), and the parallel partition replay —
/// and checks every artifact is identical to the sequential worklist's.
void expectClosureModesAgree(const std::string &Source, const char *Label) {
  ast::ASTContext Ctx;
  auto Prog = frontend(Source, Ctx, Label);
  ASSERT_NE(Prog, nullptr) << Label;

  // Pin Jobs explicitly: the default reads $AFL_CLOSURE_JOBS, and this
  // test must compare genuinely different execution strategies whatever
  // the environment says.
  closure::ClosureOptions WorklistOpts; // UseWorklist = true
  WorklistOpts.Jobs = 1;
  closure::ClosureOptions RestartOpts;
  RestartOpts.UseWorklist = false;
  RestartOpts.Jobs = 1;
  closure::ClosureOptions ParallelOpts;
  ParallelOpts.Jobs = 4;
  // Force the partitioned path even on small frontiers; otherwise most
  // corpus programs would just take the inline fallback.
  ParallelOpts.ParallelMinFrontier = 2;

  closure::ClosureAnalysis Worklist(*Prog, WorklistOpts);
  ASSERT_TRUE(Worklist.run()) << Label << ": " << Worklist.error();
  EXPECT_TRUE(Worklist.stats().UsedWorklist) << Label;
  GenResult WGen = generateConstraints(*Prog, Worklist);
  solver::SolveResult WSol = solver::solve(WGen.Sys);
  ASSERT_TRUE(WSol.Sat) << Label;
  completion::AflStats WStats;
  regions::Completion WCpl = completion::aflCompletion(
      *Prog, &WStats, constraints::GenOptions(), solver::SolveOptions(),
      WorklistOpts);
  EXPECT_TRUE(WStats.Solved) << Label;
  std::string WPrinted = regions::printRegionProgram(*Prog, &WCpl);

  // Env *ids* are interner-order dependent (independent interners per
  // mode), so key each context by its environment contents; closure ids
  // are canonicalized to content order in every mode and must match
  // exactly.
  using CtxMap =
      std::map<closure::RegEnvMap, std::vector<closure::AbsClosureId>>;
  auto collect = [](closure::ClosureAnalysis &CA,
                    const regions::RExpr *N) {
    CtxMap M;
    for (closure::RegEnvId Env : CA.contextsOf(N->id()))
      M.emplace(CA.envs().get(Env), CA.valuesOf(N->id(), Env).raw());
    return M;
  };

  struct Mode {
    const char *Name;
    closure::ClosureOptions Opts;
  };
  const Mode Others[] = {{"restart", RestartOpts},
                         {"parallel", ParallelOpts}};
  for (const Mode &M : Others) {
    SCOPED_TRACE(std::string(Label) + " vs " + M.Name);
    closure::ClosureAnalysis Other(*Prog, M.Opts);
    ASSERT_TRUE(Other.run()) << Other.error();
    EXPECT_EQ(Other.stats().UsedWorklist, M.Opts.UseWorklist);

    // Same analysis result: contexts, closures, per-context value sets.
    ASSERT_EQ(Worklist.numContexts(), Other.numContexts());
    ASSERT_EQ(Worklist.numClosures(), Other.numClosures());
    for (const regions::RExpr *N : Prog->nodes())
      EXPECT_EQ(collect(Worklist, N), collect(Other, N))
          << "node " << N->id();

    // Byte-identical generated constraint systems.
    GenResult OGen = generateConstraints(*Prog, Other);
    EXPECT_EQ(dumpSystem(WGen), dumpSystem(OGen));
    ASSERT_EQ(WGen.Choices.size(), OGen.Choices.size());
    for (size_t I = 0; I != WGen.Choices.size(); ++I) {
      EXPECT_EQ(WGen.Choices[I].Node, OGen.Choices[I].Node);
      EXPECT_EQ(WGen.Choices[I].Kind, OGen.Choices[I].Kind);
      EXPECT_EQ(WGen.Choices[I].Region, OGen.Choices[I].Region);
      EXPECT_EQ(WGen.Choices[I].B, OGen.Choices[I].B);
    }
    EXPECT_EQ(WGen.NumContexts, OGen.NumContexts);
    EXPECT_EQ(WGen.NumPinnedCalls, OGen.NumPinnedCalls);

    // Identical solver outcomes over the identical systems.
    solver::SolveResult OSol = solver::solve(OGen.Sys);
    ASSERT_EQ(WSol.Sat, OSol.Sat);
    EXPECT_EQ(WSol.StateDom, OSol.StateDom);
    EXPECT_EQ(WSol.BoolDom, OSol.BoolDom);

    // Identical end-to-end completions (the user-visible artifact).
    completion::AflStats OStats;
    regions::Completion OCpl = completion::aflCompletion(
        *Prog, &OStats, constraints::GenOptions(), solver::SolveOptions(),
        M.Opts);
    EXPECT_TRUE(OStats.Solved);
    EXPECT_EQ(WPrinted, regions::printRegionProgram(*Prog, &OCpl));
  }
}

TEST(ClosureDifferential, Table2Corpus) {
  for (const programs::BenchProgram &P : programs::table2Corpus())
    expectClosureModesAgree(P.Source, P.Name.c_str());
}

TEST(ClosureDifferential, SmallCorpus) {
  for (const programs::BenchProgram &P : programs::smallCorpus())
    expectClosureModesAgree(P.Source, P.Name.c_str());
}

TEST(ClosureDifferential, BuiltinScaledPrograms) {
  expectClosureModesAgree(programs::appelSource(20), "@appel 20");
  expectClosureModesAgree(programs::quicksortSource(12), "@quicksort 12");
  expectClosureModesAgree(programs::fibSource(10), "@fib 10");
  expectClosureModesAgree(programs::randlistSource(12), "@randlist 12");
  expectClosureModesAgree(programs::facSource(8), "@fac 8");
}

TEST(ClosureDifferential, RandomPrograms500) {
  // 500 random programs across the generator's feature space, including
  // closure-escape shapes where discovery order differs most between the
  // two fixpoints, and the permuted-payload nested-HOF family whose
  // environment orbits stress context discovery hardest.
  for (unsigned Seed = 0; Seed != 500; ++Seed) {
    programs::RandomProgramOptions Options;
    Options.HigherOrder = Seed % 3 != 0;
    Options.Recursion = Seed % 4 != 0;
    Options.ClosureEscape = Seed % 5 == 0;
    Options.NestedHof = Seed % 7 == 0;
    std::string Source = programs::generateRandomProgram(Seed, Options);
    std::string Label = "seed " + std::to_string(Seed);
    expectClosureModesAgree(Source, Label.c_str());
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace
