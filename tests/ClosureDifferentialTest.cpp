// Differential property test for the closure-analysis fixpoint: on the
// builtin corpus and a large random-program sweep, the dependency-tracked
// worklist (production mode) and the whole-program restart fixpoint
// (reference mode, the seed algorithm) must be result-identical — the
// same contexts and closures, byte-identical generated constraint
// systems, identical solver domains, and identical extracted completions.

#include "ast/ASTContext.h"
#include "closure/ClosureAnalysis.h"
#include "completion/AflCompletion.h"
#include "constraints/ConstraintGen.h"
#include "constraints/ConstraintPrinter.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"
#include "regions/RegionInference.h"
#include "regions/RegionPrinter.h"
#include "solver/Solver.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

#include <map>

using namespace afl;
using namespace afl::constraints;

namespace {

std::unique_ptr<regions::RegionProgram>
frontend(const std::string &Source, ast::ASTContext &Ctx, const char *Label) {
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Label;
  if (!E)
    return nullptr;
  types::TypedProgram Typed = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(Typed.Success) << Label;
  if (!Typed.Success)
    return nullptr;
  auto Prog = regions::inferRegions(E, Ctx, Typed, Diags);
  EXPECT_NE(Prog, nullptr) << Label;
  return Prog;
}

/// Runs closure analysis + constraint generation + solve + completion in
/// both fixpoint modes and checks every artifact is identical.
void expectClosureModesAgree(const std::string &Source, const char *Label) {
  ast::ASTContext Ctx;
  auto Prog = frontend(Source, Ctx, Label);
  ASSERT_NE(Prog, nullptr) << Label;

  closure::ClosureOptions WorklistOpts; // UseWorklist = true
  closure::ClosureOptions RestartOpts;
  RestartOpts.UseWorklist = false;

  closure::ClosureAnalysis Worklist(*Prog, WorklistOpts);
  closure::ClosureAnalysis Restart(*Prog, RestartOpts);
  ASSERT_TRUE(Worklist.run()) << Label << ": " << Worklist.error();
  ASSERT_TRUE(Restart.run()) << Label << ": " << Restart.error();
  EXPECT_TRUE(Worklist.stats().UsedWorklist) << Label;
  EXPECT_FALSE(Restart.stats().UsedWorklist) << Label;

  // Same analysis result: contexts, closures, per-context value sets.
  ASSERT_EQ(Worklist.numContexts(), Restart.numContexts()) << Label;
  ASSERT_EQ(Worklist.numClosures(), Restart.numClosures()) << Label;
  // Env *ids* are interner-order dependent (two independent interners),
  // so key each context by its environment contents; closure ids are
  // canonicalized to content order in both modes and must match exactly.
  using CtxMap =
      std::map<closure::RegEnvMap, std::vector<closure::AbsClosureId>>;
  auto collect = [](closure::ClosureAnalysis &CA,
                    const regions::RExpr *N) {
    CtxMap M;
    for (closure::RegEnvId Env : CA.contextsOf(N->id()))
      M.emplace(CA.envs().get(Env), CA.valuesOf(N->id(), Env).raw());
    return M;
  };
  for (const regions::RExpr *N : Prog->nodes())
    EXPECT_EQ(collect(Worklist, N), collect(Restart, N))
        << Label << " node " << N->id();

  // Byte-identical generated constraint systems.
  GenResult WGen = generateConstraints(*Prog, Worklist);
  GenResult RGen = generateConstraints(*Prog, Restart);
  EXPECT_EQ(dumpSystem(WGen), dumpSystem(RGen)) << Label;
  ASSERT_EQ(WGen.Choices.size(), RGen.Choices.size()) << Label;
  for (size_t I = 0; I != WGen.Choices.size(); ++I) {
    EXPECT_EQ(WGen.Choices[I].Node, RGen.Choices[I].Node) << Label;
    EXPECT_EQ(WGen.Choices[I].Kind, RGen.Choices[I].Kind) << Label;
    EXPECT_EQ(WGen.Choices[I].Region, RGen.Choices[I].Region) << Label;
    EXPECT_EQ(WGen.Choices[I].B, RGen.Choices[I].B) << Label;
  }
  EXPECT_EQ(WGen.NumContexts, RGen.NumContexts) << Label;
  EXPECT_EQ(WGen.NumPinnedCalls, RGen.NumPinnedCalls) << Label;

  // Identical solver outcomes over the identical systems.
  solver::SolveResult WSol = solver::solve(WGen.Sys);
  solver::SolveResult RSol = solver::solve(RGen.Sys);
  ASSERT_EQ(WSol.Sat, RSol.Sat) << Label;
  ASSERT_TRUE(WSol.Sat) << Label;
  EXPECT_EQ(WSol.StateDom, RSol.StateDom) << Label;
  EXPECT_EQ(WSol.BoolDom, RSol.BoolDom) << Label;

  // Identical end-to-end completions (the user-visible artifact).
  completion::AflStats WStats, RStats;
  regions::Completion WCpl = completion::aflCompletion(
      *Prog, &WStats, constraints::GenOptions(), solver::SolveOptions(),
      WorklistOpts);
  regions::Completion RCpl = completion::aflCompletion(
      *Prog, &RStats, constraints::GenOptions(), solver::SolveOptions(),
      RestartOpts);
  EXPECT_TRUE(WStats.Solved) << Label;
  EXPECT_TRUE(RStats.Solved) << Label;
  EXPECT_EQ(regions::printRegionProgram(*Prog, &WCpl),
            regions::printRegionProgram(*Prog, &RCpl))
      << Label;
}

TEST(ClosureDifferential, Table2Corpus) {
  for (const programs::BenchProgram &P : programs::table2Corpus())
    expectClosureModesAgree(P.Source, P.Name.c_str());
}

TEST(ClosureDifferential, SmallCorpus) {
  for (const programs::BenchProgram &P : programs::smallCorpus())
    expectClosureModesAgree(P.Source, P.Name.c_str());
}

TEST(ClosureDifferential, BuiltinScaledPrograms) {
  expectClosureModesAgree(programs::appelSource(20), "@appel 20");
  expectClosureModesAgree(programs::quicksortSource(12), "@quicksort 12");
  expectClosureModesAgree(programs::fibSource(10), "@fib 10");
  expectClosureModesAgree(programs::randlistSource(12), "@randlist 12");
  expectClosureModesAgree(programs::facSource(8), "@fac 8");
}

TEST(ClosureDifferential, RandomPrograms500) {
  // 500 random programs across the generator's feature space, including
  // closure-escape shapes where discovery order differs most between the
  // two fixpoints.
  for (unsigned Seed = 0; Seed != 500; ++Seed) {
    programs::RandomProgramOptions Options;
    Options.HigherOrder = Seed % 3 != 0;
    Options.Recursion = Seed % 4 != 0;
    Options.ClosureEscape = Seed % 5 == 0;
    std::string Source = programs::generateRandomProgram(Seed, Options);
    std::string Label = "seed " + std::to_string(Seed);
    expectClosureModesAgree(Source, Label.c_str());
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace
