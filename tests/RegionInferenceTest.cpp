// Unit tests for Tofte/Talpin region inference: letregion placement,
// region polymorphism, polymorphic recursion, and structural validity.

#include "ast/ASTContext.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"
#include "regions/RegionInference.h"
#include "regions/RegionPrinter.h"
#include "regions/Validator.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::regions;

namespace {

std::unique_ptr<RegionProgram> infer(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  if (!E)
    return nullptr;
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success) << Diags.str();
  if (!T.Success)
    return nullptr;
  std::unique_ptr<RegionProgram> P = inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

/// Counts nodes of kind \p K reachable from the root.
unsigned countKind(const RegionProgram &P, RExpr::Kind K) {
  unsigned N = 0;
  std::vector<const RExpr *> Work{P.Root};
  while (!Work.empty()) {
    const RExpr *E = Work.back();
    Work.pop_back();
    if (E->kind() == K)
      ++N;
    switch (E->kind()) {
    case RExpr::Kind::Lambda:
      Work.push_back(cast<RLambdaExpr>(E)->body());
      break;
    case RExpr::Kind::App:
      Work.push_back(cast<RAppExpr>(E)->fn());
      Work.push_back(cast<RAppExpr>(E)->arg());
      break;
    case RExpr::Kind::Let:
      Work.push_back(cast<RLetExpr>(E)->init());
      Work.push_back(cast<RLetExpr>(E)->body());
      break;
    case RExpr::Kind::Letrec:
      Work.push_back(cast<RLetrecExpr>(E)->fnBody());
      Work.push_back(cast<RLetrecExpr>(E)->body());
      break;
    case RExpr::Kind::If:
      Work.push_back(cast<RIfExpr>(E)->cond());
      Work.push_back(cast<RIfExpr>(E)->thenExpr());
      Work.push_back(cast<RIfExpr>(E)->elseExpr());
      break;
    case RExpr::Kind::Pair:
      Work.push_back(cast<RPairExpr>(E)->first());
      Work.push_back(cast<RPairExpr>(E)->second());
      break;
    case RExpr::Kind::Cons:
      Work.push_back(cast<RConsExpr>(E)->head());
      Work.push_back(cast<RConsExpr>(E)->tail());
      break;
    case RExpr::Kind::UnOp:
      Work.push_back(cast<RUnOpExpr>(E)->operand());
      break;
    case RExpr::Kind::BinOp:
      Work.push_back(cast<RBinOpExpr>(E)->lhs());
      Work.push_back(cast<RBinOpExpr>(E)->rhs());
      break;
    default:
      break;
    }
  }
  return N;
}

TEST(RegionInference, IntIsGlobalResult) {
  auto P = infer("42");
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(P->GlobalRegions.size(), 1u);
  EXPECT_EQ(P->Root->writeRegion(), P->GlobalRegions[0]);
}

TEST(RegionInference, DeadValueGetsLocalRegion) {
  // The pair is dead; its region must be letregion-bound, not global.
  auto P = infer("let x = (1, 2) in 5 end");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->GlobalRegions.size(), 1u); // only the 5
  // Some node binds the pair's regions locally.
  unsigned Bound = 0;
  for (const RExpr *N : P->nodes())
    Bound += static_cast<unsigned>(N->boundRegions().size());
  EXPECT_GE(Bound, 3u); // pair box + two components
}

TEST(RegionInference, ResultRegionsEscape) {
  auto P = infer("(1, 2)");
  ASSERT_NE(P, nullptr);
  // Pair box + both component regions are part of the observable result.
  EXPECT_EQ(P->GlobalRegions.size(), 3u);
}

TEST(RegionInference, Example11Structure) {
  auto P = infer(programs::example11Source());
  ASSERT_NE(P, nullptr);
  // Paper Fig. 1: three result regions (result pair, the 2, the 5); the
  // z-pair region, the closure region, and the dead 3's region are local.
  EXPECT_EQ(P->GlobalRegions.size(), 3u);
  std::string Printed = printRegionProgram(*P);
  EXPECT_NE(Printed.find("letregion"), std::string::npos);
  EXPECT_TRUE(validateRegionProgram(*P).empty());
}

TEST(RegionInference, LetrecGetsRegionFormals) {
  auto P = infer("letrec f n = n + 1 in f 3 end");
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(countKind(*P, RExpr::Kind::Letrec), 1u);
  // Find the letrec node.
  const RLetrecExpr *L = nullptr;
  for (const RExpr *N : P->nodes()) {
    if (const auto *LR = dyn_cast<RLetrecExpr>(N))
      L = LR;
  }
  ASSERT_NE(L, nullptr);
  // param region and result region are quantifiable.
  EXPECT_GE(L->formals().size(), 2u);
  // Each use of f is a region application with matching arity.
  for (const RExpr *N : P->nodes()) {
    if (const auto *RA = dyn_cast<RRegAppExpr>(N)) {
      EXPECT_EQ(RA->actuals().size(), L->formals().size());
    }
  }
}

TEST(RegionInference, PolymorphicRecursionSeparatesRegions) {
  // The recursive call must be able to use a *different* region for its
  // argument than the incoming parameter region — the key enabler of the
  // Appel result. Check that the recursive region application's actual
  // for the parameter region differs from the formal itself... i.e. the
  // recursive instantiation is not forced to be the identity.
  auto P = infer(programs::appelSource(4));
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(validateRegionProgram(*P).empty());

  // Find letrec g (the second letrec) and a regapp of g inside g's body.
  const RLetrecExpr *G = nullptr;
  for (const RExpr *N : P->nodes()) {
    if (const auto *LR = dyn_cast<RLetrecExpr>(N))
      if (P->varInfo(LR->fn()).Name == "g")
        G = LR;
  }
  ASSERT_NE(G, nullptr);
  bool FoundNonIdentity = false;
  std::vector<const RExpr *> Work{G->fnBody()};
  while (!Work.empty()) {
    const RExpr *N = Work.back();
    Work.pop_back();
    if (const auto *RA = dyn_cast<RRegAppExpr>(N)) {
      if (RA->fn() == G->fn() && RA->actuals() != G->formals())
        FoundNonIdentity = true;
    }
    if (const auto *L = dyn_cast<RLetExpr>(N)) {
      Work.push_back(L->init());
      Work.push_back(L->body());
    } else if (const auto *A = dyn_cast<RAppExpr>(N)) {
      Work.push_back(A->fn());
      Work.push_back(A->arg());
    } else if (const auto *I = dyn_cast<RIfExpr>(N)) {
      Work.push_back(I->cond());
      Work.push_back(I->thenExpr());
      Work.push_back(I->elseExpr());
    } else if (const auto *PR = dyn_cast<RPairExpr>(N)) {
      Work.push_back(PR->first());
      Work.push_back(PR->second());
    } else if (const auto *U = dyn_cast<RUnOpExpr>(N)) {
      Work.push_back(U->operand());
    } else if (const auto *B = dyn_cast<RBinOpExpr>(N)) {
      Work.push_back(B->lhs());
      Work.push_back(B->rhs());
    }
  }
  EXPECT_TRUE(FoundNonIdentity)
      << "recursive call should instantiate fresh regions";
}

TEST(RegionInference, EffectsContainReadsAndWrites) {
  auto P = infer("1 + 2");
  ASSERT_NE(P, nullptr);
  const RExpr *Root = P->Root;
  EXPECT_TRUE(Root->hasWriteRegion());
  EXPECT_TRUE(Root->effect().count(Root->writeRegion()));
  EXPECT_EQ(Root->readRegions().size(), 2u);
  for (RegionVarId R : Root->readRegions())
    EXPECT_TRUE(Root->effect().count(R));
}

TEST(RegionInference, OverallEffectCoversAccesses) {
  for (const char *Src :
       {"let x = (1, 2) in fst x end",
        "letrec f n = if n = 0 then 0 else f (n - 1) in f 3 end",
        "(fn x => x + 1) 2"}) {
    auto P = infer(Src);
    ASSERT_NE(P, nullptr);
    for (const RExpr *N : P->nodes()) {
      // Only consider reachable nodes: validator covers reachability; an
      // easy proxy is nodes with a non-empty overall effect or accesses.
      if (N->overallEffect().empty())
        continue;
      if (N->hasWriteRegion()) {
        EXPECT_TRUE(N->overallEffect().count(N->writeRegion()))
            << printRegionProgram(*P);
      }
      for (RegionVarId R : N->readRegions())
        EXPECT_TRUE(N->overallEffect().count(R));
    }
  }
}

class ValidatorProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ValidatorProperty, RandomProgramsValidate) {
  std::string Source = programs::generateRandomProgram(GetParam());
  SCOPED_TRACE(Source);
  auto P = infer(Source);
  ASSERT_NE(P, nullptr);
  std::vector<std::string> Errors = validateRegionProgram(*P);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorProperty,
                         ::testing::Range(2000u, 2080u));

TEST(RegionInference, CorpusValidates) {
  for (const programs::BenchProgram &BP : programs::smallCorpus()) {
    auto P = infer(BP.Source);
    ASSERT_NE(P, nullptr) << BP.Name;
    std::vector<std::string> Errors = validateRegionProgram(*P);
    EXPECT_TRUE(Errors.empty()) << BP.Name << ": " << Errors.front();
  }
}

} // namespace
