// Tests for the pipeline facade: option handling, failure reporting, and
// the ablation consistency guarantee (fully-lexical == conservative).

#include "driver/Pipeline.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(Driver, ParseErrorReported) {
  driver::PipelineResult R = driver::runPipeline("let x = in x end");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.Diags.hasErrors());
  EXPECT_EQ(R.Prog, nullptr);
}

TEST(Driver, TypeErrorReported) {
  driver::PipelineResult R = driver::runPipeline("1 + true");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(Driver, SkipRunsProducesAnalysisOnly) {
  driver::PipelineOptions Options;
  Options.SkipRuns = true;
  driver::PipelineResult R =
      driver::runPipeline(programs::fibSource(5), Options);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_NE(R.Prog, nullptr);
  EXPECT_TRUE(R.Analysis.Solved);
  EXPECT_FALSE(R.Conservative.Ok); // runs skipped
  EXPECT_FALSE(R.Afl.Ok);
}

TEST(Driver, TraceOptionRecordsTraces) {
  driver::PipelineOptions Options;
  Options.RecordTrace = true;
  driver::PipelineResult R =
      driver::runPipeline(programs::facSource(4), Options);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_FALSE(R.Conservative.Trace.empty());
  EXPECT_FALSE(R.Afl.Trace.empty());
}

TEST(Driver, StepLimitSurfacesAsFailure) {
  driver::PipelineOptions Options;
  Options.MaxSteps = 100;
  driver::PipelineResult R =
      driver::runPipeline(programs::quicksortSource(50), Options);
  EXPECT_FALSE(R.ok());
}

TEST(Driver, PrintersProduceOutput) {
  driver::PipelineResult R = driver::runPipeline("1 + 2");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R.printConservative().find("binop +"), std::string::npos);
  EXPECT_NE(R.printAfl().find("binop +"), std::string::npos);
  EXPECT_NE(R.printConservative().find("alloc_before"), std::string::npos);
}

/// The fully-lexical ablation must reproduce the conservative (T-T)
/// completion's memory behavior exactly — the constraint system and the
/// direct construction agree.
class LexicalEqualsConservative
    : public ::testing::TestWithParam<programs::BenchProgram> {};

TEST_P(LexicalEqualsConservative, SameMemoryBehavior) {
  driver::PipelineOptions Options;
  Options.GenOptions.FreeApp = false;
  Options.GenOptions.LateAlloc = false;
  Options.GenOptions.EarlyFree = false;
  driver::PipelineResult R =
      driver::runPipeline(GetParam().Source, Options);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  // Value metrics match the conservative completion exactly. Region
  // counts may be slightly lower: even lexically-restricted solving can
  // skip allocating a region that is never dynamically accessed.
  EXPECT_EQ(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  EXPECT_EQ(R.Afl.S.FinalValues, R.Conservative.S.FinalValues);
  EXPECT_LE(R.Afl.S.MaxRegions, R.Conservative.S.MaxRegions);
  EXPECT_GE(R.Afl.S.MaxRegions + 8, R.Conservative.S.MaxRegions);
  EXPECT_LE(R.Afl.S.TotalRegionAllocs, R.Conservative.S.TotalRegionAllocs);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LexicalEqualsConservative,
    ::testing::ValuesIn(programs::smallCorpus()),
    [](const ::testing::TestParamInfo<programs::BenchProgram> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(Driver, StatsPopulatedOnFullRun) {
  driver::PipelineResult R =
      driver::runPipeline(programs::example11Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const driver::PipelineStats &S = R.Stats;
  // Every stage that executed reports a strictly positive wall time.
  EXPECT_GT(S.ParseSeconds, 0.0);
  EXPECT_GT(S.TypeInferSeconds, 0.0);
  EXPECT_GT(S.RegionInferSeconds, 0.0);
  EXPECT_GT(S.ConservativeSeconds, 0.0);
  EXPECT_GT(S.ClosureSeconds, 0.0);
  EXPECT_GT(S.ConstraintGenSeconds, 0.0);
  EXPECT_GT(S.SolveSeconds, 0.0);
  EXPECT_GT(S.RunConservativeSeconds, 0.0);
  EXPECT_GT(S.RunAflSeconds, 0.0);
  EXPECT_GT(S.RunReferenceSeconds, 0.0);
  EXPECT_GT(S.TotalSeconds, 0.0);
  // Stages partition the pipeline: their sum cannot exceed the total.
  EXPECT_LE(S.stageSum(), S.TotalSeconds);
  // Artifact sizes come from the run itself.
  EXPECT_EQ(S.AstNodes, R.Ctx->numNodes());
  EXPECT_EQ(S.RegionNodes, R.Prog->numNodes());
  EXPECT_GT(S.RegionVars, 0u);
  // The solve stage time matches what the analysis reported.
  EXPECT_DOUBLE_EQ(S.SolveSeconds, R.Analysis.SolveSeconds);
}

TEST(Driver, StatsOnSkippedRunsLeaveRunTimesZero) {
  driver::PipelineOptions Options;
  Options.SkipRuns = true;
  driver::PipelineResult R =
      driver::runPipeline(programs::fibSource(5), Options);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_GT(R.Stats.SolveSeconds, 0.0);
  EXPECT_EQ(R.Stats.RunConservativeSeconds, 0.0);
  EXPECT_EQ(R.Stats.RunAflSeconds, 0.0);
  EXPECT_EQ(R.Stats.RunReferenceSeconds, 0.0);
  EXPECT_LE(R.Stats.stageSum(), R.Stats.TotalSeconds);
}

TEST(Driver, StatsOnFailureStillTimed) {
  driver::PipelineResult R = driver::runPipeline("let x = in x end");
  EXPECT_FALSE(R.ok());
  EXPECT_GT(R.Stats.ParseSeconds, 0.0);
  EXPECT_GT(R.Stats.TotalSeconds, 0.0);
  EXPECT_EQ(R.Stats.SolveSeconds, 0.0);
}

TEST(Driver, RecordMetricsEmitsSchema) {
  driver::PipelineResult R =
      driver::runPipeline(programs::example11Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  MetricsRegistry Reg;
  R.recordMetrics(Reg);
  EXPECT_EQ(Reg.counter("ok"), 1u);
  EXPECT_GT(Reg.counter("sizes/ast_nodes"), 0u);
  EXPECT_GT(Reg.counter("sizes/constraints"), 0u);
  EXPECT_GT(Reg.timer("stages/parse/wall_seconds"), 0.0);
  EXPECT_GT(Reg.timer("stages/region_inference/wall_seconds"), 0.0);
  EXPECT_GT(Reg.timer("stages/constraint_gen/wall_seconds"), 0.0);
  EXPECT_GT(Reg.timer("stages/solve/wall_seconds"), 0.0);
  EXPECT_GT(Reg.timer("stages/run_afl/wall_seconds"), 0.0);
  EXPECT_EQ(Reg.counter("stages/solve/propagations"),
            R.Analysis.SolverPropagations);
  EXPECT_EQ(Reg.counter("runs/afl/max_values"), R.Afl.S.MaxValues);
  EXPECT_GT(Reg.timer("total_seconds"), 0.0);
  // The timings table renders every stage.
  std::string Table = R.formatTimings();
  EXPECT_NE(Table.find("region inference"), std::string::npos);
  EXPECT_NE(Table.find("solve"), std::string::npos);
  EXPECT_NE(Table.find("propagations"), std::string::npos);
}

TEST(Driver, AblationsNeverWorseThanLexical) {
  // Each single ablation still improves on (or matches) T-T and is never
  // better than the full system.
  for (unsigned Seed = 100; Seed != 130; ++Seed) {
    std::string Source = programs::generateRandomProgram(Seed);
    SCOPED_TRACE(Source);

    driver::PipelineResult Full = driver::runPipeline(Source);
    ASSERT_TRUE(Full.ok()) << Full.Diags.str();

    for (int Ablate = 0; Ablate != 3; ++Ablate) {
      driver::PipelineOptions Options;
      if (Ablate == 0)
        Options.GenOptions.FreeApp = false;
      if (Ablate == 1)
        Options.GenOptions.LateAlloc = false;
      if (Ablate == 2) {
        Options.GenOptions.EarlyFree = false;
        Options.GenOptions.FreeApp = false;
      }
      driver::PipelineResult R = driver::runPipeline(Source, Options);
      ASSERT_TRUE(R.ok()) << R.Diags.str();
      EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
      EXPECT_GE(R.Afl.S.MaxValues, Full.Afl.S.MaxValues);
      EXPECT_EQ(R.Afl.ResultText, Full.Reference.ResultText);
    }
  }
}

} // namespace
