// Unit tests for the instrumented interpreter: Fig. 2 semantics,
// instrumentation counters, trace recording, and safety trapping
// (the dynamic checks behind Theorem 5.1). Every test runs under both
// evaluators — the bytecode VM and the tree walker — so the trap
// messages and counters are pinned for each backend independently.

#include "ast/ASTContext.h"
#include "completion/Conservative.h"
#include "completion/StorageModes.h"
#include "interp/Interp.h"
#include "parser/Parser.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::regions;

namespace {

struct Built {
  std::unique_ptr<RegionProgram> Prog;
  Completion Cons;
};

Built build(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success) << Diags.str();
  Built B;
  B.Prog = inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(B.Prog, nullptr) << Diags.str();
  B.Cons = completion::conservativeCompletion(*B.Prog);
  return B;
}

class InterpTest : public ::testing::TestWithParam<interp::BackendKind> {
protected:
  interp::RunResult run(const RegionProgram &Prog, const Completion &C,
                        interp::RunOptions Options = interp::RunOptions()) {
    Options.Backend = GetParam();
    return interp::run(Prog, C, Options);
  }
};

TEST_P(InterpTest, CountsValueAllocations) {
  Built B = build("1 + 2");
  interp::RunResult R = run(*B.Prog, B.Cons);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Three boxed values: 1, 2, and the sum.
  EXPECT_EQ(R.S.TotalValueAllocs, 3u);
  EXPECT_EQ(R.S.Writes, 3u);
  EXPECT_EQ(R.S.Reads, 2u); // both operands read
  EXPECT_EQ(R.ResultText, "3");
}

TEST_P(InterpTest, RegionAllocationCounting) {
  Built B = build("let x = (1, 2) in fst x end");
  interp::RunResult R = run(*B.Prog, B.Cons);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.S.TotalRegionAllocs, 3u);
  EXPECT_GE(R.S.MaxRegions, 1u);
  EXPECT_LE(R.S.MaxValues, R.S.TotalValueAllocs);
}

TEST_P(InterpTest, FinalValuesCountsResidentOnly) {
  // The dead pair is freed by the conservative completion at letregion
  // exit; only the result int remains.
  Built B = build("let x = (1, 2) in 5 end");
  interp::RunResult R = run(*B.Prog, B.Cons);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.S.FinalValues, 1u);
}

TEST_P(InterpTest, TraceIsMonotoneInTime) {
  Built B = build("letrec f n = if n = 0 then 0 else f (n - 1) in f 5 end");
  interp::RunOptions Options;
  Options.RecordTrace = true;
  interp::RunResult R = run(*B.Prog, B.Cons, Options);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_FALSE(R.Trace.empty());
  uint64_t Peak = 0;
  for (size_t I = 1; I != R.Trace.size(); ++I) {
    EXPECT_LT(R.Trace[I - 1].Time, R.Trace[I].Time);
    Peak = std::max(Peak, R.Trace[I].ValuesHeld);
  }
  EXPECT_EQ(Peak, R.S.MaxValues);
  EXPECT_EQ(R.Trace.size(), R.S.Time);
}

TEST_P(InterpTest, TrapsOnUseAfterFree) {
  // Sabotage the completion: free the result region of "1 + 2" before
  // the addition reads its operands.
  Built B = build("1 + 2");
  // Find the two int literal nodes; free the lhs region right after it
  // is written.
  const RExpr *Lhs = cast<RBinOpExpr>(B.Prog->Root)->lhs();
  Completion Bad = B.Cons;
  Bad.Post[Lhs->id()].push_back({COpKind::FreeAfter, Lhs->writeRegion()});
  interp::RunResult R = run(*B.Prog, Bad);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not allocated"), std::string::npos);
}

TEST_P(InterpTest, TrapsOnDoubleAllocation) {
  Built B = build("1 + 2");
  Completion Bad = B.Cons;
  const RExpr *Lhs = cast<RBinOpExpr>(B.Prog->Root)->lhs();
  // The region is already allocated (conservatively, at program entry
  // or letregion entry); allocating again must trap.
  Bad.Pre[Lhs->id()].push_back({COpKind::AllocBefore, Lhs->writeRegion()});
  interp::RunResult R = run(*B.Prog, Bad);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not unallocated"), std::string::npos);
}

TEST_P(InterpTest, TrapsOnDoubleFree) {
  Built B = build("let x = 1 in 2 end");
  // Free x's region twice.
  const auto *Let = cast<RLetExpr>(B.Prog->Root);
  const RExpr *Init = Let->init();
  Completion Bad = B.Cons;
  Bad.Post[Init->id()].push_back({COpKind::FreeAfter, Init->writeRegion()});
  Bad.Post[Init->id()].push_back({COpKind::FreeAfter, Init->writeRegion()});
  interp::RunResult R = run(*B.Prog, Bad);
  EXPECT_FALSE(R.Ok);
}

TEST_P(InterpTest, TrapsOnWriteToUnallocatedRegion) {
  Built B = build("1 + 2");
  // Remove every allocation: the first write faults.
  Completion Empty;
  interp::RunResult R = run(*B.Prog, Empty);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not allocated"), std::string::npos);
}

TEST_P(InterpTest, TrapsOnRegionLeftAllocatedAtScopeExit) {
  Built B = build("let x = (1, 2) in 5 end");
  // Strip the frees from the conservative completion: letregion exit
  // must detect the still-allocated region.
  Completion NoFrees = B.Cons;
  NoFrees.Post.clear();
  interp::RunResult R = run(*B.Prog, NoFrees);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("letregion exit"), std::string::npos);
}

TEST_P(InterpTest, StepLimit) {
  Built B = build("letrec loop n = loop n in loop 1 end");
  interp::RunOptions Options;
  Options.MaxSteps = 10000;
  interp::RunResult R = run(*B.Prog, B.Cons, Options);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST_P(InterpTest, DepthLimit) {
  // Runaway recursion with a small frame budget hits the depth guard
  // before the step limit. The walker counts host-stack recursion
  // levels; the VM counts explicit frames plus static depth — both
  // report the same trap.
  Built B = build("letrec loop n = loop (n + 1) in loop 1 end");
  interp::RunOptions Options;
  Options.MaxDepth = 64;
  interp::RunResult R = run(*B.Prog, B.Cons, Options);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("recursion depth limit exceeded"), std::string::npos)
      << R.Error;
}

TEST_P(InterpTest, TrapsOnReadOfResetValue) {
  // Sabotaged storage modes: marking the *outer* cons of a two-cell
  // list atbot resets the shared list region after the inner cell was
  // written, so reading the tail cell must trap. (inferStorageModes
  // never produces this — the inner cell is pending — which is exactly
  // why an unsound mode must be caught dynamically.)
  Built B = build("hd (tl (1 :: 2 :: nil))");
  const auto *Hd = cast<RUnOpExpr>(B.Prog->Root);
  const auto *Tl = cast<RUnOpExpr>(Hd->operand());
  const RExpr *OuterCons = Tl->operand();
  completion::StorageModes Bad;
  Bad.AtBot.insert(OuterCons->id());
  interp::RunOptions Options;
  Options.Modes = &Bad;
  interp::RunResult R = run(*B.Prog, B.Cons, Options);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("destroyed by a region reset"), std::string::npos)
      << R.Error;
  EXPECT_EQ(R.S.Resets, 1u);
  // The reset destroys the inner cons cell and the boxed nil.
  EXPECT_EQ(R.S.ResetValues, 2u);
}

TEST_P(InterpTest, RendersValues) {
  struct Case {
    const char *Source;
    const char *Expected;
  } Cases[] = {
      {"42", "42"},
      {"(-7)", "-7"},
      {"true", "true"},
      {"()", "()"},
      {"(1, (2, 3))", "(1, (2, 3))"},
      {"1 :: 2 :: nil", "[1, 2]"},
      {"nil", "[]"},
      {"fn x => x", "<fn>"},
      {"(1 :: nil, true)", "([1], true)"},
  };
  for (const Case &C : Cases) {
    Built B = build(C.Source);
    interp::RunResult R = run(*B.Prog, B.Cons);
    ASSERT_TRUE(R.Ok) << C.Source << ": " << R.Error;
    EXPECT_EQ(R.ResultText, C.Expected) << C.Source;
  }
}

TEST_P(InterpTest, TimeCountsAllMemoryOperations) {
  Built B = build("1 + 2");
  interp::RunResult R = run(*B.Prog, B.Cons);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.S.Time, R.S.Reads + R.S.Writes + R.S.TotalRegionAllocs +
                          (R.S.TotalRegionAllocs - R.S.CurRegions));
}

INSTANTIATE_TEST_SUITE_P(Backends, InterpTest,
                         ::testing::Values(interp::BackendKind::Vm,
                                           interp::BackendKind::Tree),
                         [](const auto &Info) {
                           return Info.param == interp::BackendKind::Vm
                                      ? "Vm"
                                      : "Tree";
                         });

} // namespace
