// Unit tests for the solver preprocessing layer: union-find collapse of
// Eq constraints, forced-boolean elimination, triple deduplication,
// early conflict detection, and the connected-component decomposition.

#include "constraints/ConstraintSystem.h"
#include "solver/Components.h"
#include "solver/Simplify.h"
#include "solver/Solver.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::constraints;
using namespace afl::solver;

namespace {

TEST(Simplify, UnionFindCollapsesEqChains) {
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState();
  StateVarId S3 = Sys.newState();
  Sys.addEq(S1, S2);
  Sys.addEq(S2, S3);
  SimplifiedSystem Simp = simplify(Sys);
  ASSERT_FALSE(Simp.Conflict);
  EXPECT_EQ(Simp.Stats.EqRemoved, 2u);
  EXPECT_EQ(Simp.Stats.StateVarsBefore, 3u);
  EXPECT_EQ(Simp.Stats.StateVarsAfter, 1u);
  EXPECT_EQ(Simp.Residual.numConstraints(), 0u);
  // All three map to the same representative, whose domain is the
  // intersection of the member domains.
  EXPECT_EQ(Simp.StateRep[S1], Simp.StateRep[S2]);
  EXPECT_EQ(Simp.StateRep[S2], Simp.StateRep[S3]);
  EXPECT_EQ(Simp.Residual.StateDom[Simp.StateRep[S1]], StA);
}

TEST(Simplify, EqRemovedToZeroAlways) {
  // The headline invariant: no Eq constraint survives simplification.
  ConstraintSystem Sys;
  StateVarId Prev = Sys.newState(StU);
  for (int I = 0; I != 50; ++I) {
    StateVarId Next = Sys.newState();
    if (I % 2) {
      Sys.addEq(Prev, Next);
    } else {
      BoolVarId B = Sys.newBool();
      Sys.addAllocTriple(Prev, B, Next);
    }
    Prev = Next;
  }
  SimplifiedSystem Simp = simplify(Sys);
  ASSERT_FALSE(Simp.Conflict);
  EXPECT_EQ(Simp.Residual.numConstraintsOfKind(Constraint::Kind::Eq), 0u);
  EXPECT_EQ(Simp.Stats.EqRemoved, 25u);
}

TEST(Simplify, EqConflictDetectedEarly) {
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState(StD);
  Sys.addEq(S1, S2);
  SimplifiedSystem Simp = simplify(Sys);
  EXPECT_TRUE(Simp.Conflict);
  SolveResult R = solve(Sys);
  EXPECT_FALSE(R.Sat);
}

TEST(Simplify, EmptyInitialDomainIsConflict) {
  // Regression: restrictState can zero a domain on a variable that
  // occurs in no constraint; the solver must notice.
  ConstraintSystem Sys;
  StateVarId S = Sys.newState();
  Sys.restrictState(S, StA);
  Sys.restrictState(S, StD); // A & D = empty
  SimplifiedSystem Simp = simplify(Sys);
  EXPECT_TRUE(Simp.Conflict);
}

TEST(Simplify, DedupIdenticalTriples) {
  // Two contexts generating the same triple over Eq-linked states
  // collapse to one residual triple.
  ConstraintSystem Sys;
  StateVarId A1 = Sys.newState();
  StateVarId A2 = Sys.newState();
  StateVarId B1 = Sys.newState();
  StateVarId B2 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addEq(A1, A2);
  Sys.addEq(B1, B2);
  Sys.addAllocTriple(A1, B, B1);
  Sys.addAllocTriple(A2, B, B2);
  SimplifiedSystem Simp = simplify(Sys);
  ASSERT_FALSE(Simp.Conflict);
  EXPECT_EQ(Simp.Stats.DupTriplesRemoved, 1u);
  EXPECT_EQ(Simp.Residual.numConstraints(), 1u);
}

TEST(Simplify, ForcedTrueTripleEliminated) {
  // Disjoint endpoint domains force the boolean true; the triple is
  // applied (domains restricted to the transition states) and dropped.
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StU);
  StateVarId S2 = Sys.newState(StA);
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S1, B, S2);
  SimplifiedSystem Simp = simplify(Sys);
  ASSERT_FALSE(Simp.Conflict);
  EXPECT_EQ(Simp.Stats.BoolsForced, 1u);
  EXPECT_EQ(Simp.Stats.ForcedTriplesRemoved, 1u);
  EXPECT_EQ(Simp.Residual.numConstraints(), 0u);
  EXPECT_EQ(Simp.Residual.BoolDom[B], BTrue);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_TRUE(R.boolValue(B));
}

TEST(Simplify, SameRepresentativeTripleForcesFalse) {
  // An allocation triple whose endpoints are Eq-linked cannot fire (the
  // U->A transition cannot happen on one variable).
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState();
  StateVarId S2 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addEq(S1, S2);
  Sys.addAllocTriple(S1, B, S2);
  SimplifiedSystem Simp = simplify(Sys);
  ASSERT_FALSE(Simp.Conflict);
  EXPECT_EQ(Simp.Residual.BoolDom[B], BFalse);
  EXPECT_EQ(Simp.Residual.numConstraints(), 0u);
  SolveResult R = solve(Sys);
  ASSERT_TRUE(R.Sat);
  EXPECT_FALSE(R.boolValue(B));
}

TEST(Simplify, ForcedFalseCascadesIntoUnion) {
  // A pre-state that can never be U forces the alloc boolean false,
  // which turns the triple into an equality — merging the endpoints and
  // intersecting their domains.
  ConstraintSystem Sys;
  StateVarId S1 = Sys.newState(StA);
  StateVarId S2 = Sys.newState(static_cast<uint8_t>(StA | StD));
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S1, B, S2);
  SimplifiedSystem Simp = simplify(Sys);
  ASSERT_FALSE(Simp.Conflict);
  EXPECT_EQ(Simp.StateRep[S1], Simp.StateRep[S2]);
  EXPECT_EQ(Simp.Residual.StateDom[Simp.StateRep[S1]], StA);
  EXPECT_EQ(Simp.Residual.BoolDom[B], BFalse);
}

TEST(Components, IndependentChainsSplit) {
  // Two disjoint alloc chains land in two components; a shared boolean
  // would merge them.
  ConstraintSystem Sys;
  StateVarId A1 = Sys.newState(StU);
  StateVarId A2 = Sys.newState(StAny);
  BoolVarId BA = Sys.newBool();
  Sys.addAllocTriple(A1, BA, A2);
  StateVarId B1 = Sys.newState(StA);
  StateVarId B2 = Sys.newState(StAny);
  BoolVarId BB = Sys.newBool();
  Sys.addDeallocTriple(B1, BB, B2);
  ComponentSplit Split = splitComponents(Sys);
  ASSERT_EQ(Split.Comps.size(), 2u);
  EXPECT_EQ(Split.Comps[0].Sys.numConstraints(), 1u);
  EXPECT_EQ(Split.Comps[1].Sys.numConstraints(), 1u);
  EXPECT_EQ(Split.LargestConstraints, 1u);
}

TEST(Components, SharedBooleanMergesComponents) {
  ConstraintSystem Sys;
  StateVarId A1 = Sys.newState();
  StateVarId A2 = Sys.newState();
  StateVarId B1 = Sys.newState();
  StateVarId B2 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(A1, B, A2);
  Sys.addAllocTriple(B1, B, B2);
  ComponentSplit Split = splitComponents(Sys);
  EXPECT_EQ(Split.Comps.size(), 1u);
}

TEST(Components, UnconstrainedVariablesBelongToNoComponent) {
  ConstraintSystem Sys;
  Sys.newState(StA); // never mentioned by a constraint
  StateVarId S1 = Sys.newState();
  StateVarId S2 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.newBool(); // unconstrained boolean
  Sys.addAllocTriple(S1, B, S2);
  ComponentSplit Split = splitComponents(Sys);
  ASSERT_EQ(Split.Comps.size(), 1u);
  EXPECT_EQ(Split.Comps[0].StateGlobal.size(), 2u);
  EXPECT_EQ(Split.Comps[0].BoolGlobal.size(), 1u);
}

TEST(Components, SingleComponentFallback) {
  // A single-component system solved with aggressive parallel options
  // produces the same answer as the default path.
  ConstraintSystem Sys;
  StateVarId Prev = Sys.newState(StU);
  std::vector<BoolVarId> Bs;
  for (int I = 0; I != 20; ++I) {
    StateVarId Next = Sys.newState();
    BoolVarId B = Sys.newBool();
    Sys.addAllocTriple(Prev, B, Next);
    Bs.push_back(B);
    Prev = Next;
  }
  Sys.restrictState(Prev, StA);
  SolveOptions Par;
  Par.Jobs = 8;
  Par.ParallelMinConstraints = 0;
  SolveResult RPar = solve(Sys, Par);
  SolveResult RDef = solve(Sys);
  ASSERT_TRUE(RPar.Sat);
  EXPECT_EQ(RPar.Simplify.Components, 1u);
  EXPECT_EQ(RPar.StateDom, RDef.StateDom);
  EXPECT_EQ(RPar.BoolDom, RDef.BoolDom);
  // Exactly one (late) allocation either way.
  EXPECT_TRUE(RPar.BoolDom[Bs.back()] == BTrue);
}

/// A small multi-shard fixture: N disjoint alloc chains, each pinned to
/// end in A so the solve is forced to pick the late allocation.
ConstraintSystem chainsSystem(int Chains, int Len) {
  ConstraintSystem Sys;
  for (int Chain = 0; Chain != Chains; ++Chain) {
    StateVarId Prev = Sys.newState(StU);
    for (int I = 0; I != Len; ++I) {
      StateVarId Next = Sys.newState();
      BoolVarId B = Sys.newBool();
      if (I % 3 == 2)
        Sys.addEq(Prev, Next);
      else
        Sys.addAllocTriple(Prev, B, Next);
      Prev = Next;
    }
    Sys.restrictState(Prev, StA);
  }
  return Sys;
}

void expectSameConstraint(const Constraint &A, const Constraint &B) {
  EXPECT_EQ(A.K, B.K);
  EXPECT_EQ(A.S1, B.S1);
  EXPECT_EQ(A.S2, B.S2);
  EXPECT_EQ(A.B, B.B);
}

TEST(Shards, EmissionShardsMatchSplitComponents) {
  // The emission-time union-find must finalize into exactly the
  // components splitComponents discovers, in the same deterministic
  // order (ascending smallest state variable) with the same ascending
  // member lists.
  ConstraintSystem Sys = chainsSystem(7, 9);
  ComponentSplit Split = splitComponents(Sys);
  ASSERT_EQ(Sys.numShards(), Split.Comps.size());
  for (uint32_t K = 0; K != Sys.numShards(); ++K) {
    const Component &C = Split.Comps[K];
    ConstraintSystem::OccRange States = Sys.shardStates(K);
    ConstraintSystem::OccRange Bools = Sys.shardBools(K);
    ASSERT_EQ(States.size(), C.StateGlobal.size());
    ASSERT_EQ(Bools.size(), C.BoolGlobal.size());
    EXPECT_TRUE(std::equal(States.begin(), States.end(),
                           C.StateGlobal.begin()));
    EXPECT_TRUE(std::equal(Bools.begin(), Bools.end(),
                           C.BoolGlobal.begin()));
    EXPECT_EQ(Sys.shardConstraints(K).size(), C.Sys.numConstraints());
  }
  EXPECT_EQ(Sys.largestShardConstraints(), Split.LargestConstraints);
}

TEST(Shards, UntrackedRebuildMatchesIncremental) {
  // disableConnectivityTracking() skips the per-constraint union-find;
  // ensureShards then rebuilds it in one batch pass. Both routes must
  // produce identical CSR tables.
  ConstraintSystem Tracked = chainsSystem(5, 8);
  ConstraintSystem Scratch = chainsSystem(5, 8);
  Scratch.disableConnectivityTracking();
  ASSERT_EQ(Tracked.numShards(), Scratch.numShards());
  for (uint32_t K = 0; K != Tracked.numShards(); ++K) {
    ConstraintSystem::OccRange A = Tracked.shardStates(K);
    ConstraintSystem::OccRange B = Scratch.shardStates(K);
    ASSERT_EQ(A.size(), B.size());
    EXPECT_TRUE(std::equal(A.begin(), A.end(), B.begin()));
    ConstraintSystem::OccRange CA = Tracked.shardConstraints(K);
    ConstraintSystem::OccRange CB = Scratch.shardConstraints(K);
    ASSERT_EQ(CA.size(), CB.size());
    EXPECT_TRUE(std::equal(CA.begin(), CA.end(), CB.begin()));
  }
}

TEST(Shards, SharedBooleanMergesShards) {
  // Same topology as Components.SharedBooleanMergesComponents, observed
  // through the emission-time index.
  ConstraintSystem Sys;
  StateVarId A1 = Sys.newState();
  StateVarId A2 = Sys.newState();
  StateVarId B1 = Sys.newState();
  StateVarId B2 = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(A1, B, A2);
  Sys.addAllocTriple(B1, B, B2);
  EXPECT_EQ(Sys.numShards(), 1u);
  EXPECT_EQ(Sys.shardStates(0).size(), 4u);
  EXPECT_EQ(Sys.shardBools(0).size(), 1u);
}

TEST(Shards, SelfTripleFormsSingletonShard) {
  // Degenerate triple S -B-> S: only one state variable is involved, so
  // no merge happens, but S is constrained and must still surface as a
  // (singleton) shard holding the boolean.
  ConstraintSystem Sys;
  Sys.newState(); // unconstrained; belongs to no shard
  StateVarId S = Sys.newState();
  BoolVarId B = Sys.newBool();
  Sys.addAllocTriple(S, B, S);
  ASSERT_EQ(Sys.numShards(), 1u);
  ASSERT_EQ(Sys.shardStates(0).size(), 1u);
  EXPECT_EQ(*Sys.shardStates(0).begin(), S);
  ASSERT_EQ(Sys.shardBools(0).size(), 1u);
  EXPECT_EQ(*Sys.shardBools(0).begin(), B);
  EXPECT_EQ(Sys.shardConstraints(0).size(), 1u);
}

TEST(Shards, SimplifyShardMatchesMaterializedSimplify) {
  // simplifyShard consumes the CSR index in place; its contract is
  // bit-identical output to simplify() over the materialized component.
  ConstraintSystem Sys = chainsSystem(6, 7);
  ShardLocalIds Ids = buildShardLocalIds(Sys);
  for (uint32_t K = 0; K != Sys.numShards(); ++K) {
    SimplifiedSystem Direct = simplifyShard(Sys, K, Ids);
    SimplifiedSystem Mat = simplify(materializeShard(Sys, K, Ids).Sys);
    ASSERT_EQ(Direct.Conflict, Mat.Conflict);
    ASSERT_EQ(Direct.Residual.numConstraints(), Mat.Residual.numConstraints());
    for (size_t I = 0; I != Direct.Residual.Cons.size(); ++I)
      expectSameConstraint(Direct.Residual.Cons[I], Mat.Residual.Cons[I]);
    EXPECT_EQ(Direct.Residual.StateDom, Mat.Residual.StateDom);
    EXPECT_EQ(Direct.Residual.BoolDom, Mat.Residual.BoolDom);
    EXPECT_EQ(Direct.StateRep, Mat.StateRep);
  }
}

TEST(Shards, SimplifyShardRangeIsConcatenation) {
  // A contiguous range of shards simplifies to the exact concatenation
  // of the members' individual simplifications: residual constraints in
  // member order with representative ids offset by the preceding
  // members' representative counts, and boolean ids offset by the
  // preceding members' shard-local boolean counts.
  ConstraintSystem Sys = chainsSystem(6, 7);
  ShardLocalIds Ids = buildShardLocalIds(Sys);
  const uint32_t N = static_cast<uint32_t>(Sys.numShards());
  ASSERT_GT(N, 2u);
  SimplifiedSystem Whole = simplifyShardRange(Sys, 0, N, Ids);
  ASSERT_FALSE(Whole.Conflict);
  size_t ConsAt = 0, RepOff = 0, BoolOff = 0;
  for (uint32_t K = 0; K != N; ++K) {
    SimplifiedSystem Part = simplifyShard(Sys, K, Ids);
    ASSERT_FALSE(Part.Conflict);
    ASSERT_LE(ConsAt + Part.Residual.Cons.size(), Whole.Residual.Cons.size());
    for (const Constraint &C : Part.Residual.Cons) {
      Constraint Shifted = C;
      Shifted.S1 += static_cast<StateVarId>(RepOff);
      Shifted.S2 += static_cast<StateVarId>(RepOff);
      Shifted.B += static_cast<BoolVarId>(BoolOff);
      expectSameConstraint(Whole.Residual.Cons[ConsAt++], Shifted);
    }
    RepOff += Part.Residual.numStateVars();
    BoolOff += Sys.shardBools(K).size();
  }
  EXPECT_EQ(ConsAt, Whole.Residual.Cons.size());
  EXPECT_EQ(RepOff, Whole.Residual.numStateVars());
}

TEST(Components, ParallelMultiComponentMatchesSequential) {
  // Many independent chains: force the parallel path and compare
  // against both the sequential-simplified and the raw solve.
  ConstraintSystem Sys;
  for (int Chain = 0; Chain != 16; ++Chain) {
    StateVarId Prev = Sys.newState(StU);
    for (int I = 0; I != 10; ++I) {
      StateVarId Next = Sys.newState();
      BoolVarId B = Sys.newBool();
      Sys.addAllocTriple(Prev, B, Next);
      Prev = Next;
    }
    Sys.restrictState(Prev, StA);
  }
  SolveOptions Par;
  Par.Jobs = 4;
  Par.ParallelMinConstraints = 0;
  SolveOptions Raw;
  Raw.Simplify = false;
  SolveResult RPar = solve(Sys, Par);
  SolveResult RSeq = solve(Sys);
  SolveResult RRaw = solve(Sys, Raw);
  ASSERT_TRUE(RPar.Sat);
  ASSERT_TRUE(RRaw.Sat);
  EXPECT_EQ(RPar.Simplify.Components, 16u);
  EXPECT_GT(RPar.Simplify.ThreadsUsed, 1u);
  EXPECT_EQ(RPar.StateDom, RSeq.StateDom);
  EXPECT_EQ(RPar.BoolDom, RSeq.BoolDom);
  EXPECT_EQ(RPar.StateDom, RRaw.StateDom);
  EXPECT_EQ(RPar.BoolDom, RRaw.BoolDom);
}

} // namespace
