// Tests for constraint-system statistics and dumping.

#include "ast/ASTContext.h"
#include "closure/ClosureAnalysis.h"
#include "constraints/ConstraintPrinter.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::constraints;

namespace {

GenResult genFor(const std::string &Source,
                 std::unique_ptr<regions::RegionProgram> &ProgOut) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(T.Success);
  ProgOut = regions::inferRegions(E, Ctx, T, Diags);
  EXPECT_NE(ProgOut, nullptr);
  closure::ClosureAnalysis CA(*ProgOut);
  CA.run();
  return generateConstraints(*ProgOut, CA);
}

TEST(ConstraintPrinter, StatsAddUp) {
  std::unique_ptr<regions::RegionProgram> Prog;
  GenResult Gen = genFor(programs::example11Source(), Prog);
  SystemStats S = systemStats(Gen);
  EXPECT_EQ(S.Equalities + S.AllocTriples + S.DeallocTriples,
            Gen.Sys.numConstraints());
  EXPECT_EQ(S.AllocBeforeChoices + S.FreeAfterChoices + S.FreeAppChoices,
            Gen.Choices.size());
  EXPECT_GT(S.AllocTriples, 0u);
  EXPECT_GT(S.DeallocTriples, 0u);
  EXPECT_GT(S.RestrictedStates, 0u); // letregion U-entries, access =A
  EXPECT_EQ(S.FreeAppChoices, 1u);   // one application in Example 1.1
}

TEST(ConstraintPrinter, SummaryAndDump) {
  std::unique_ptr<regions::RegionProgram> Prog;
  GenResult Gen = genFor("1 + 2", Prog);
  std::string Summary = summarize(Gen);
  EXPECT_NE(Summary.find("state vars"), std::string::npos);
  EXPECT_NE(Summary.find("alloc triples"), std::string::npos);
  std::string Dump = dumpSystem(Gen);
  EXPECT_NE(Dump.find(")a"), std::string::npos);
  EXPECT_NE(Dump.find(")d"), std::string::npos);
  EXPECT_NE(Dump.find("alloc_before r"), std::string::npos);
  // Every choice boolean appears in the dump.
  for (const ChoicePoint &CP : Gen.Choices)
    EXPECT_NE(Dump.find("c" + std::to_string(CP.B) + " := "),
              std::string::npos);
}

TEST(ConstraintPrinter, ChoicesCoverEveryOverallEffectRegion) {
  std::unique_ptr<regions::RegionProgram> Prog;
  GenResult Gen = genFor("let x = (1, 2) in fst x end", Prog);
  // Each reachable node must have one alloc_before and one free_after
  // choice per overall-effect region (the §4.2 pre-pass).
  std::map<std::pair<regions::RNodeId, regions::RegionVarId>, int> Alloc;
  for (const ChoicePoint &CP : Gen.Choices)
    if (CP.Kind == regions::COpKind::AllocBefore)
      ++Alloc[{CP.Node, CP.Region}];
  for (const auto &[Key, Count] : Alloc)
    EXPECT_EQ(Count, 1) << "duplicate choice point";
}

} // namespace
