// Differential property test for the bytecode VM (src/vm/): on the
// builtin corpus, the scaled builtin programs and a 500-seed random
// sweep, executing under the VM must be *bit-identical* to the Fig. 2
// tree walker — same success flag, error string, rendered result, every
// Table 2 counter, the full memory-over-time trace, and every region
// lifetime — under both the conservative and the A-F-L completion, with
// and without atbot storage modes.

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "completion/Conservative.h"
#include "completion/StorageModes.h"
#include "interp/Interp.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

std::unique_ptr<regions::RegionProgram>
frontend(const std::string &Source, ast::ASTContext &Ctx, const char *Label) {
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Label;
  if (!E)
    return nullptr;
  types::TypedProgram Typed = types::inferTypes(E, Ctx, Diags);
  EXPECT_TRUE(Typed.Success) << Label;
  if (!Typed.Success)
    return nullptr;
  auto Prog = regions::inferRegions(E, Ctx, Typed, Diags);
  EXPECT_NE(Prog, nullptr) << Label;
  return Prog;
}

/// Runs \p Prog under \p C on both backends and checks every observable
/// field of the results matches bit for bit.
void expectBackendsAgree(const regions::RegionProgram &Prog,
                         const regions::Completion &C,
                         const completion::StorageModes *Modes,
                         const char *Label) {
  interp::RunOptions Options;
  Options.RecordTrace = true;
  Options.RecordLifetimes = true;
  Options.Modes = Modes;

  Options.Backend = interp::BackendKind::Tree;
  interp::RunResult T = interp::run(Prog, C, Options);
  Options.Backend = interp::BackendKind::Vm;
  interp::RunResult V = interp::run(Prog, C, Options);

  EXPECT_EQ(T.Ok, V.Ok) << Label << " tree: " << T.Error
                        << " vm: " << V.Error;
  EXPECT_EQ(T.Error, V.Error) << Label;
  EXPECT_EQ(T.ResultText, V.ResultText) << Label;

  // Table 2 counters plus every auxiliary counter.
  EXPECT_EQ(T.S.MaxRegions, V.S.MaxRegions) << Label;
  EXPECT_EQ(T.S.TotalRegionAllocs, V.S.TotalRegionAllocs) << Label;
  EXPECT_EQ(T.S.TotalValueAllocs, V.S.TotalValueAllocs) << Label;
  EXPECT_EQ(T.S.MaxValues, V.S.MaxValues) << Label;
  EXPECT_EQ(T.S.FinalValues, V.S.FinalValues) << Label;
  EXPECT_EQ(T.S.CurRegions, V.S.CurRegions) << Label;
  EXPECT_EQ(T.S.CurValues, V.S.CurValues) << Label;
  EXPECT_EQ(T.S.Reads, V.S.Reads) << Label;
  EXPECT_EQ(T.S.Writes, V.S.Writes) << Label;
  EXPECT_EQ(T.S.Steps, V.S.Steps) << Label;
  EXPECT_EQ(T.S.Resets, V.S.Resets) << Label;
  EXPECT_EQ(T.S.ResetValues, V.S.ResetValues) << Label;
  EXPECT_EQ(T.S.Time, V.S.Time) << Label;

  // The full memory-over-time trace (Figures 5-8).
  ASSERT_EQ(T.Trace.size(), V.Trace.size()) << Label;
  for (size_t I = 0; I != T.Trace.size(); ++I) {
    if (T.Trace[I].Time != V.Trace[I].Time ||
        T.Trace[I].ValuesHeld != V.Trace[I].ValuesHeld) {
      ADD_FAILURE() << Label << ": trace diverges at sample " << I << ": tree ("
                    << T.Trace[I].Time << ", " << T.Trace[I].ValuesHeld
                    << ") vm (" << V.Trace[I].Time << ", "
                    << V.Trace[I].ValuesHeld << ")";
      break;
    }
  }

  // Region lifetimes, indexed by runtime creation order (Figure 1c):
  // identical indices prove the VM creates regions in walker order.
  ASSERT_EQ(T.Lifetimes.size(), V.Lifetimes.size()) << Label;
  for (size_t I = 0; I != T.Lifetimes.size(); ++I) {
    if (T.Lifetimes[I].AllocTime != V.Lifetimes[I].AllocTime ||
        T.Lifetimes[I].FreeTime != V.Lifetimes[I].FreeTime ||
        T.Lifetimes[I].ValuesAtFree != V.Lifetimes[I].ValuesAtFree) {
      ADD_FAILURE() << Label << ": lifetime diverges for region " << I;
      break;
    }
  }
}

/// Full harness for one source program: conservative and A-F-L
/// completions, each with and without inferred storage modes.
void expectVmMatchesTree(const std::string &Source, const char *Label) {
  ast::ASTContext Ctx;
  auto Prog = frontend(Source, Ctx, Label);
  ASSERT_NE(Prog, nullptr) << Label;

  regions::Completion Cons = completion::conservativeCompletion(*Prog);
  completion::AflStats Stats;
  regions::Completion Afl = completion::aflCompletion(*Prog, &Stats);
  ASSERT_TRUE(Stats.Solved) << Label;
  completion::StorageModes Modes = completion::inferStorageModes(*Prog);

  expectBackendsAgree(*Prog, Cons, nullptr,
                      (std::string(Label) + " [cons]").c_str());
  expectBackendsAgree(*Prog, Afl, nullptr,
                      (std::string(Label) + " [afl]").c_str());
  expectBackendsAgree(*Prog, Cons, &Modes,
                      (std::string(Label) + " [cons+atbot]").c_str());
  expectBackendsAgree(*Prog, Afl, &Modes,
                      (std::string(Label) + " [afl+atbot]").c_str());
}

TEST(VmDifferential, Table2Corpus) {
  for (const programs::BenchProgram &P : programs::table2Corpus())
    expectVmMatchesTree(P.Source, P.Name.c_str());
}

TEST(VmDifferential, SmallCorpus) {
  for (const programs::BenchProgram &P : programs::smallCorpus())
    expectVmMatchesTree(P.Source, P.Name.c_str());
}

TEST(VmDifferential, BuiltinScaledPrograms) {
  expectVmMatchesTree(programs::appelSource(20), "@appel 20");
  expectVmMatchesTree(programs::quicksortSource(12), "@quicksort 12");
  expectVmMatchesTree(programs::fibSource(10), "@fib 10");
  expectVmMatchesTree(programs::randlistSource(12), "@randlist 12");
  expectVmMatchesTree(programs::facSource(8), "@fac 8");
}

TEST(VmDifferential, RandomPrograms500) {
  // Same feature-space sweep as ClosureDifferential.RandomPrograms500:
  // higher-order, recursive and closure-escape shapes all represented.
  for (unsigned Seed = 0; Seed != 500; ++Seed) {
    programs::RandomProgramOptions Options;
    Options.HigherOrder = Seed % 3 != 0;
    Options.Recursion = Seed % 4 != 0;
    Options.ClosureEscape = Seed % 5 == 0;
    std::string Source = programs::generateRandomProgram(Seed, Options);
    std::string Label = "seed " + std::to_string(Seed);
    expectVmMatchesTree(Source, Label.c_str());
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace
