// Unit tests for ML type inference and the underlying type table.

#include "ast/ASTContext.h"
#include "parser/Parser.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::types;

namespace {

/// Infers types for \p Source and renders the root type.
std::string typeOf(const std::string &Source) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  if (!E)
    return "<parse error>";
  TypedProgram T = inferTypes(E, Ctx, Diags);
  if (!T.Success)
    return "<type error: " + Diags.str() + ">";
  return T.Table.str(T.typeOf(E));
}

bool typeErrors(const std::string &Source) {
  return typeOf(Source).find("<type error") == 0;
}

TEST(TypeInference, Literals) {
  EXPECT_EQ(typeOf("42"), "int");
  EXPECT_EQ(typeOf("true"), "bool");
  EXPECT_EQ(typeOf("()"), "unit");
}

TEST(TypeInference, Operators) {
  EXPECT_EQ(typeOf("1 + 2"), "int");
  EXPECT_EQ(typeOf("1 < 2"), "bool");
  EXPECT_EQ(typeOf("1 = 2"), "bool");
}

TEST(TypeInference, PairsAndLists) {
  EXPECT_EQ(typeOf("(1, true)"), "int * bool");
  EXPECT_EQ(typeOf("fst (1, true)"), "int");
  EXPECT_EQ(typeOf("snd (1, true)"), "bool");
  EXPECT_EQ(typeOf("1 :: nil"), "int list");
  EXPECT_EQ(typeOf("hd (1 :: nil)"), "int");
  EXPECT_EQ(typeOf("tl (1 :: nil)"), "int list");
  EXPECT_EQ(typeOf("null nil"), "bool");
  EXPECT_EQ(typeOf("(1, 2) :: nil"), "(int * int) list");
}

TEST(TypeInference, Functions) {
  EXPECT_EQ(typeOf("fn x => x + 1"), "int -> int");
  EXPECT_EQ(typeOf("(fn x => x + 1) 2"), "int");
  // Unconstrained type variables default to int after inference.
  EXPECT_EQ(typeOf("fn f => f 1"), "(int -> int) -> int");
  EXPECT_EQ(typeOf("fn x => fn y => (x, y + 0)"),
            "int -> int -> int * int");
}

TEST(TypeInference, LetAndLetrec) {
  EXPECT_EQ(typeOf("let x = 1 in x :: nil end"), "int list");
  EXPECT_EQ(typeOf("letrec f n = if n = 0 then nil else n :: f (n - 1) in "
                   "f 3 end"),
            "int list");
}

TEST(TypeInference, ResidualVarsDefaultToInt) {
  // The element type of an unused nil is unconstrained; downstream phases
  // need ground types, so it defaults to int.
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr("nil", Ctx, Diags);
  TypedProgram T = inferTypes(E, Ctx, Diags);
  ASSERT_TRUE(T.Success);
  EXPECT_EQ(T.Table.str(T.typeOf(E)), "int list");
}

TEST(TypeInference, Errors) {
  EXPECT_TRUE(typeErrors("1 + true"));
  EXPECT_TRUE(typeErrors("if 1 then 2 else 3"));
  EXPECT_TRUE(typeErrors("if true then 1 else false"));
  EXPECT_TRUE(typeErrors("fst 1"));
  EXPECT_TRUE(typeErrors("hd 1"));
  EXPECT_TRUE(typeErrors("1 :: true :: nil"));
  EXPECT_TRUE(typeErrors("1 2"));
  EXPECT_TRUE(typeErrors("unknown_var"));
  EXPECT_TRUE(typeErrors("fn x => x x")); // occurs check
}

TEST(TypeInference, ParamTypesRecorded) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr("fn x => x + 1", Ctx, Diags);
  TypedProgram T = inferTypes(E, Ctx, Diags);
  ASSERT_TRUE(T.Success);
  EXPECT_EQ(T.Table.str(T.paramTypeOf(E)), "int");
}

TEST(TypeTable, UnifyAndFind) {
  TypeTable TT;
  TypeId V1 = TT.freshVar();
  TypeId V2 = TT.freshVar();
  EXPECT_TRUE(TT.unify(V1, V2));
  EXPECT_EQ(TT.find(V1), TT.find(V2));
  EXPECT_TRUE(TT.unify(V1, TT.intType()));
  EXPECT_EQ(TT.kind(V2), TypeKind::Int);
}

TEST(TypeTable, StructuralUnify) {
  TypeTable TT;
  TypeId V = TT.freshVar();
  TypeId A1 = TT.arrow(TT.intType(), V);
  TypeId A2 = TT.arrow(TT.intType(), TT.boolType());
  EXPECT_TRUE(TT.unify(A1, A2));
  EXPECT_EQ(TT.kind(V), TypeKind::Bool);
  EXPECT_FALSE(TT.unify(TT.intType(), TT.boolType()));
  EXPECT_FALSE(TT.unify(A1, TT.pair(TT.intType(), TT.boolType())));
}

TEST(TypeTable, OccursCheck) {
  TypeTable TT;
  TypeId V = TT.freshVar();
  TypeId A = TT.arrow(V, TT.intType());
  EXPECT_FALSE(TT.unify(V, A));
}

} // namespace
