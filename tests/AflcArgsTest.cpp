// Tests for the strict CLI parsers behind aflc's arguments: a count
// (-j / --solver-jobs / --closure-jobs / @builtin N) either parses as a
// plain base-10 unsigned integer or it is a usage error — never atoi's
// silent 0 / prefix salvage — and a backend name (--interp= /
// $AFL_INTERP) is exactly "vm" or "tree", never a silent fallback.

#include "interp/Interp.h"
#include "support/CliParse.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(CliParse, AcceptsPlainUnsignedIntegers) {
  unsigned V = 99;
  EXPECT_TRUE(parseCliUnsigned("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseCliUnsigned("1", V));
  EXPECT_EQ(V, 1u);
  EXPECT_TRUE(parseCliUnsigned("48", V));
  EXPECT_EQ(V, 48u);
  EXPECT_TRUE(parseCliUnsigned("4294967295", V));
  EXPECT_EQ(V, 4294967295u);
}

TEST(CliParse, RejectsNonNumeric) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("bogus", V));
  EXPECT_FALSE(parseCliUnsigned("", V));
  EXPECT_FALSE(parseCliUnsigned(" ", V));
  EXPECT_FALSE(parseCliUnsigned("x4", V));
  EXPECT_EQ(V, 7u) << "output must be untouched on failure";
}

TEST(CliParse, RejectsTrailingGarbage) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("1x", V));
  EXPECT_FALSE(parseCliUnsigned("2 ", V));
  EXPECT_FALSE(parseCliUnsigned("3.0", V));
  EXPECT_FALSE(parseCliUnsigned("4,", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, RejectsSigns) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("-3", V));
  EXPECT_FALSE(parseCliUnsigned("+3", V));
  EXPECT_FALSE(parseCliUnsigned("-0", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, RejectsOverflow) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("4294967296", V)); // UINT_MAX + 1
  EXPECT_FALSE(parseCliUnsigned("99999999999999999999", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, RejectsWhitespaceAndBasePrefixes) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned(" 1", V));
  EXPECT_FALSE(parseCliUnsigned("0x10", V));
  EXPECT_FALSE(parseCliUnsigned("1e3", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, ToggleAcceptsExactlyZeroAndOne) {
  // $AFL_ARENA_POOL: aflc rejects anything but "0"/"1" with a usage
  // error instead of the library's lenient anything-but-0-is-on.
  bool V = true;
  EXPECT_TRUE(parseCliToggle("0", V));
  EXPECT_FALSE(V);
  EXPECT_TRUE(parseCliToggle("1", V));
  EXPECT_TRUE(V);
}

TEST(CliParse, ToggleRejectsEverythingElse) {
  bool V = true;
  EXPECT_FALSE(parseCliToggle("", V));
  EXPECT_FALSE(parseCliToggle("2", V));
  EXPECT_FALSE(parseCliToggle("on", V));
  EXPECT_FALSE(parseCliToggle("off", V));
  EXPECT_FALSE(parseCliToggle("true", V));
  EXPECT_FALSE(parseCliToggle("01", V));
  EXPECT_FALSE(parseCliToggle(" 1", V));
  EXPECT_FALSE(parseCliToggle("1 ", V));
  EXPECT_TRUE(V) << "output must be untouched on failure";
}

TEST(CliParse, BackendNamesParseExactly) {
  interp::BackendKind B = interp::BackendKind::Tree;
  EXPECT_TRUE(interp::parseBackendName("vm", B));
  EXPECT_EQ(B, interp::BackendKind::Vm);
  EXPECT_TRUE(interp::parseBackendName("tree", B));
  EXPECT_EQ(B, interp::BackendKind::Tree);
}

TEST(CliParse, BackendNamesRejectEverythingElse) {
  interp::BackendKind B = interp::BackendKind::Vm;
  EXPECT_FALSE(interp::parseBackendName("", B));
  EXPECT_FALSE(interp::parseBackendName("v", B));
  EXPECT_FALSE(interp::parseBackendName("VM", B));
  EXPECT_FALSE(interp::parseBackendName("treee", B));
  EXPECT_FALSE(interp::parseBackendName("vm ", B));
  EXPECT_FALSE(interp::parseBackendName(" tree", B));
  EXPECT_FALSE(interp::parseBackendName("interpreter", B));
  EXPECT_EQ(B, interp::BackendKind::Vm)
      << "output must be untouched on failure";
}

} // namespace
