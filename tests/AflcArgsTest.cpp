// Tests for the strict CLI parsers behind aflc's arguments: a count
// (-j / --solver-jobs / --closure-jobs / --closure-widen / @builtin N)
// either parses as a plain base-10 unsigned integer or it is a usage
// error — never atoi's silent 0 / prefix salvage — and a backend name
// (--interp= / $AFL_INTERP) is exactly "vm" or "tree", never a silent
// fallback. Also covers writeTextFile, the helper behind --metrics=FILE:
// an unopenable or unwritable target must be a reported failure, not a
// success message over a file that was never written.

#include "interp/Interp.h"
#include "support/CliParse.h"
#include "support/FileIO.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

using namespace afl;

namespace {

TEST(CliParse, AcceptsPlainUnsignedIntegers) {
  unsigned V = 99;
  EXPECT_TRUE(parseCliUnsigned("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseCliUnsigned("1", V));
  EXPECT_EQ(V, 1u);
  EXPECT_TRUE(parseCliUnsigned("48", V));
  EXPECT_EQ(V, 48u);
  EXPECT_TRUE(parseCliUnsigned("4294967295", V));
  EXPECT_EQ(V, 4294967295u);
}

TEST(CliParse, RejectsNonNumeric) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("bogus", V));
  EXPECT_FALSE(parseCliUnsigned("", V));
  EXPECT_FALSE(parseCliUnsigned(" ", V));
  EXPECT_FALSE(parseCliUnsigned("x4", V));
  EXPECT_EQ(V, 7u) << "output must be untouched on failure";
}

TEST(CliParse, RejectsTrailingGarbage) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("1x", V));
  EXPECT_FALSE(parseCliUnsigned("2 ", V));
  EXPECT_FALSE(parseCliUnsigned("3.0", V));
  EXPECT_FALSE(parseCliUnsigned("4,", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, RejectsSigns) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("-3", V));
  EXPECT_FALSE(parseCliUnsigned("+3", V));
  EXPECT_FALSE(parseCliUnsigned("-0", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, RejectsOverflow) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned("4294967296", V)); // UINT_MAX + 1
  EXPECT_FALSE(parseCliUnsigned("99999999999999999999", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, RejectsWhitespaceAndBasePrefixes) {
  unsigned V = 7;
  EXPECT_FALSE(parseCliUnsigned(" 1", V));
  EXPECT_FALSE(parseCliUnsigned("0x10", V));
  EXPECT_FALSE(parseCliUnsigned("1e3", V));
  EXPECT_EQ(V, 7u);
}

TEST(CliParse, ToggleAcceptsExactlyZeroAndOne) {
  // $AFL_ARENA_POOL: aflc rejects anything but "0"/"1" with a usage
  // error instead of the library's lenient anything-but-0-is-on.
  bool V = true;
  EXPECT_TRUE(parseCliToggle("0", V));
  EXPECT_FALSE(V);
  EXPECT_TRUE(parseCliToggle("1", V));
  EXPECT_TRUE(V);
}

TEST(CliParse, ToggleRejectsEverythingElse) {
  bool V = true;
  EXPECT_FALSE(parseCliToggle("", V));
  EXPECT_FALSE(parseCliToggle("2", V));
  EXPECT_FALSE(parseCliToggle("on", V));
  EXPECT_FALSE(parseCliToggle("off", V));
  EXPECT_FALSE(parseCliToggle("true", V));
  EXPECT_FALSE(parseCliToggle("01", V));
  EXPECT_FALSE(parseCliToggle(" 1", V));
  EXPECT_FALSE(parseCliToggle("1 ", V));
  EXPECT_TRUE(V) << "output must be untouched on failure";
}

TEST(CliParse, BackendNamesParseExactly) {
  interp::BackendKind B = interp::BackendKind::Tree;
  EXPECT_TRUE(interp::parseBackendName("vm", B));
  EXPECT_EQ(B, interp::BackendKind::Vm);
  EXPECT_TRUE(interp::parseBackendName("tree", B));
  EXPECT_EQ(B, interp::BackendKind::Tree);
}

TEST(FileIO, WriteTextFileRoundTrips) {
  namespace fs = std::filesystem;
  fs::path Path = fs::temp_directory_path() / "aflc_fileio_test.json";
  std::string Err;
  EXPECT_TRUE(writeTextFile(Path.string(), "{\"ok\":1}\n", Err));
  EXPECT_TRUE(Err.empty());
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), "{\"ok\":1}\n");
  std::remove(Path.string().c_str());
}

TEST(FileIO, WriteTextFileReportsUnopenablePath) {
  // A path whose parent does not exist cannot be opened.
  std::string Err;
  EXPECT_FALSE(writeTextFile("/nonexistent-dir-aflc/metrics.json", "{}", Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos) << Err;
  EXPECT_NE(Err.find("/nonexistent-dir-aflc/metrics.json"), std::string::npos)
      << "diagnostic must name the file";
}

TEST(FileIO, WriteTextFileReportsDirectoryTarget) {
  // Naming a directory is the classic --metrics=DIR mistake. Depending
  // on the libc this fails at open or only once the buffer flushes —
  // either way it must come back as a failure with the path named.
  namespace fs = std::filesystem;
  std::string Dir = fs::temp_directory_path().string();
  std::string Err;
  EXPECT_FALSE(writeTextFile(Dir, "{}", Err));
  EXPECT_NE(Err.find(Dir), std::string::npos) << Err;
}

TEST(FileIO, WriteTextFileReportsDeferredWriteError) {
  // /dev/full opens fine but every flush fails with ENOSPC — exactly
  // the deferred-error shape the old unchecked `Out << Json` dropped.
  // Only meaningful where the device exists (Linux).
  if (!std::filesystem::exists("/dev/full"))
    GTEST_SKIP() << "/dev/full not available";
  std::string Err;
  EXPECT_FALSE(writeTextFile("/dev/full", "{\"doomed\":true}", Err));
  EXPECT_NE(Err.find("write error"), std::string::npos) << Err;
}

TEST(CliParse, BackendNamesRejectEverythingElse) {
  interp::BackendKind B = interp::BackendKind::Vm;
  EXPECT_FALSE(interp::parseBackendName("", B));
  EXPECT_FALSE(interp::parseBackendName("v", B));
  EXPECT_FALSE(interp::parseBackendName("VM", B));
  EXPECT_FALSE(interp::parseBackendName("treee", B));
  EXPECT_FALSE(interp::parseBackendName("vm ", B));
  EXPECT_FALSE(interp::parseBackendName(" tree", B));
  EXPECT_FALSE(interp::parseBackendName("interpreter", B));
  EXPECT_EQ(B, interp::BackendKind::Vm)
      << "output must be untouched on failure";
}

} // namespace
