// Parser unit tests: shapes, precedence, associativity, error reporting,
// and printer round-tripping.

#include "ast/ASTContext.h"
#include "ast/Expr.h"
#include "ast/ExprPrinter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::ast;

namespace {

const Expr *parseOk(ASTContext &Ctx, const std::string &Source) {
  DiagnosticEngine Diags;
  const Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_NE(E, nullptr) << Diags.str();
  return E;
}

std::string parseError(const std::string &Source) {
  ASTContext Ctx;
  DiagnosticEngine Diags;
  const Expr *E = parseExpr(Source, Ctx, Diags);
  EXPECT_EQ(E, nullptr) << "expected a parse error for: " << Source;
  return Diags.str();
}

TEST(Parser, Precedence) {
  ASTContext Ctx;
  // * binds tighter than +.
  const auto *E = cast<BinOpExpr>(parseOk(Ctx, "1 + 2 * 3"));
  EXPECT_EQ(E->op(), BinOpKind::Add);
  EXPECT_EQ(cast<BinOpExpr>(E->rhs())->op(), BinOpKind::Mul);

  // Comparison binds loosest among operators.
  const auto *C = cast<BinOpExpr>(parseOk(Ctx, "1 + 2 < 3 * 4"));
  EXPECT_EQ(C->op(), BinOpKind::Lt);

  // :: binds between additive and comparison, right-associative.
  const auto *L = cast<ConsExpr>(parseOk(Ctx, "1 :: 2 :: nil"));
  EXPECT_TRUE(isa<IntLitExpr>(L->head()));
  EXPECT_TRUE(isa<ConsExpr>(L->tail()));
}

TEST(Parser, ApplicationLeftAssociative) {
  ASTContext Ctx;
  const auto *E = cast<AppExpr>(parseOk(Ctx, "f x y"));
  EXPECT_TRUE(isa<AppExpr>(E->fn()));
  EXPECT_TRUE(isa<VarExpr>(E->arg()));
}

TEST(Parser, ApplicationBindsTighterThanOperators) {
  ASTContext Ctx;
  const auto *E = cast<BinOpExpr>(parseOk(Ctx, "f x + g y"));
  EXPECT_EQ(E->op(), BinOpKind::Add);
  EXPECT_TRUE(isa<AppExpr>(E->lhs()));
  EXPECT_TRUE(isa<AppExpr>(E->rhs()));
}

TEST(Parser, UnaryMinusOnlyBeforeLiterals) {
  ASTContext Ctx;
  const auto *Neg = cast<IntLitExpr>(parseOk(Ctx, "(-5)"));
  EXPECT_EQ(Neg->value(), -5);
  // "f - 1" stays a subtraction (minus never starts an argument).
  const auto *Sub = cast<BinOpExpr>(parseOk(Ctx, "f - 1"));
  EXPECT_EQ(Sub->op(), BinOpKind::Sub);
}

TEST(Parser, FnExtendsRight) {
  ASTContext Ctx;
  const auto *L = cast<LambdaExpr>(parseOk(Ctx, "fn x => x + 1"));
  EXPECT_TRUE(isa<BinOpExpr>(L->body()));
}

TEST(Parser, PairsAndUnit) {
  ASTContext Ctx;
  EXPECT_TRUE(isa<UnitLitExpr>(parseOk(Ctx, "()")));
  const auto *P = cast<PairExpr>(parseOk(Ctx, "(1, 2)"));
  EXPECT_TRUE(isa<IntLitExpr>(P->first()));
  // Parenthesized expression is not a pair.
  EXPECT_TRUE(isa<IntLitExpr>(parseOk(Ctx, "(1)")));
}

TEST(Parser, LetLetrecShapes) {
  ASTContext Ctx;
  const auto *L = cast<LetExpr>(parseOk(Ctx, "let x = 1 in x end"));
  EXPECT_EQ(Ctx.text(L->name()), "x");
  const auto *R =
      cast<LetrecExpr>(parseOk(Ctx, "letrec f n = n in f 1 end"));
  EXPECT_EQ(Ctx.text(R->fnName()), "f");
  EXPECT_EQ(Ctx.text(R->param()), "n");
}

TEST(Parser, UnOpBindsTighterThanBinOp) {
  ASTContext Ctx;
  const auto *E = cast<BinOpExpr>(parseOk(Ctx, "hd l + 1"));
  EXPECT_EQ(E->op(), BinOpKind::Add);
  EXPECT_TRUE(isa<UnOpExpr>(E->lhs()));
}

TEST(Parser, Comments) {
  ASTContext Ctx;
  EXPECT_TRUE(isa<IntLitExpr>(
      parseOk(Ctx, "(* a comment (* nested *) more *) 42")));
}

TEST(Parser, Errors) {
  EXPECT_NE(parseError("let x 1 in x end").find("expected '='"),
            std::string::npos);
  EXPECT_NE(parseError("1 +").find("expected expression"),
            std::string::npos);
  EXPECT_NE(parseError("(1, 2").find("expected ')'"), std::string::npos);
  EXPECT_NE(parseError("if 1 then 2").find("expected 'else'"),
            std::string::npos);
  EXPECT_NE(parseError("1 2 3 extra $").find("unexpected character"),
            std::string::npos);
  EXPECT_NE(parseError("fn => x").find("expected identifier"),
            std::string::npos);
  EXPECT_NE(parseError("(* unterminated").find("unterminated comment"),
            std::string::npos);
  EXPECT_NE(parseError("1 1v3x :").find("unexpected character"),
            std::string::npos);
}

TEST(Parser, TrailingInputRejected) {
  EXPECT_NE(parseError("1 end").find("expected end of input"),
            std::string::npos);
}

TEST(Printer, RoundTripsThroughParser) {
  const char *Sources[] = {
      "1 + 2 * 3",
      "fn x => x + 1",
      "let x = (1, 2) in fst x + snd x end",
      "letrec f n = if n = 0 then 1 else n * f (n - 1) in f 5 end",
      "1 :: 2 :: nil",
      "if null nil then hd (1 :: nil) else 2",
      "(fn f => f 1) (fn x => x)",
      "3 mod 2 = 1",
  };
  for (const char *Source : Sources) {
    std::string Src = Source;
    ASTContext Ctx1;
    const Expr *E1 = parseOk(Ctx1, Src);
    ASSERT_NE(E1, nullptr);
    std::string P1 = printExpr(E1, Ctx1.interner());
    ASTContext Ctx2;
    const Expr *E2 = parseOk(Ctx2, P1);
    ASSERT_NE(E2, nullptr) << "printed form failed to parse: " << P1;
    std::string P2 = printExpr(E2, Ctx2.interner());
    EXPECT_EQ(P1, P2) << "print/parse/print not idempotent for " << Src;
  }
}

TEST(Printer, NegativeLiteralsParenthesized) {
  ASTContext Ctx;
  const Expr *E = Ctx.app(Ctx.var("f"), Ctx.intLit(-1));
  std::string P = printExpr(E, Ctx.interner());
  EXPECT_EQ(P, "f ((-1))");
  ASTContext Ctx2;
  EXPECT_NE(parseOk(Ctx2, P), nullptr);
}

} // namespace
