// Tests for pair-pattern binders ("fn (x, y) => ...", "let (x, y) = ...",
// "letrec f (x, y) = ..."), a parser-level desugaring into fst/snd
// projections.

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

void check(const std::string &Source, const std::string &Expected) {
  SCOPED_TRACE(Source);
  driver::PipelineResult R = driver::runPipeline(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Afl.ResultText, Expected);
  EXPECT_EQ(R.Reference.ResultText, Expected);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
}

TEST(PatternBinder, LambdaPattern) {
  check("(fn (a, b) => a + b) (3, 4)", "7");
}

TEST(PatternBinder, LetPattern) {
  check("let (a, b) = (10, 20) in a * b end", "200");
}

TEST(PatternBinder, LetrecPattern) {
  check("letrec g (n, acc) = if n = 0 then acc + 0 else g (n - 1, acc + "
        "n) in g (10, 0) end",
        "55");
}

TEST(PatternBinder, NestedPattern) {
  check("let ((a, b), c) = ((1, 2), 3) in a + 10 * b + 100 * c end",
        "321");
}

TEST(PatternBinder, PatternShadowing) {
  check("let a = 1 in let (a, b) = (2, 3) in a + b end end", "5");
}

TEST(PatternBinder, PatternInHigherOrder) {
  check("let apply = fn (f, x) => f x in apply ((fn n => n * n), 7) end",
        "49");
}

TEST(PatternBinder, ErrorOnNonPattern) {
  driver::PipelineResult R = driver::runPipeline("fn (a, ) => a");
  EXPECT_FALSE(R.ok());
}

TEST(PatternBinder, QuicksortStyleHelpers) {
  // The corpus helpers become pleasantly readable with patterns.
  check("letrec append (xs, ys) = if null xs then ys else hd xs :: append "
        "(tl xs, ys) in append (1 :: 2 :: nil, 3 :: nil) end",
        "[1, 2, 3]");
}

} // namespace
