// Differential property test for the solver preprocessing layer: on the
// builtin corpus and a large random-program sweep, the simplified solve
// (and the simplified + parallel per-component solve) must produce
// bit-identical output — Sat, state domains and boolean domains — to
// the raw §4.3 solver. Every mode is additionally checked against the
// byte-per-variable domain representation (`--no-packed-domains`), the
// oracle for the packed bitvector default.

#include "ast/ASTContext.h"
#include "closure/ClosureAnalysis.h"
#include "constraints/ConstraintGen.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "programs/RandomProgram.h"
#include "regions/RegionInference.h"
#include "solver/Solver.h"
#include "types/TypeInference.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::constraints;
using namespace afl::solver;

namespace {

/// Runs frontend + closure analysis + constraint generation and checks
/// that all three solve modes agree exactly.
void expectSolveModesAgree(const std::string &Source, const char *Label) {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *E = parseExpr(Source, Ctx, Diags);
  ASSERT_NE(E, nullptr) << Label;
  types::TypedProgram Typed = types::inferTypes(E, Ctx, Diags);
  ASSERT_TRUE(Typed.Success) << Label;
  auto Prog = regions::inferRegions(E, Ctx, Typed, Diags);
  ASSERT_NE(Prog, nullptr) << Label;
  closure::ClosureAnalysis CA(*Prog);
  CA.run();
  GenResult Gen = generateConstraints(*Prog, CA);

  SolveOptions RawOpts;
  RawOpts.Simplify = false;
  SolveResult Raw = solve(Gen.Sys, RawOpts);

  // Default mode: per-shard simplify + solve over the shards recorded
  // by the emission-time union-find.
  SolveResult Simplified = solve(Gen.Sys);

  // Monolithic mode: same preprocessing, but the emission shards are
  // ignored — one whole-system simplify, components discovered (or just
  // counted) at solve time. This is the pre-sharding pipeline.
  SolveOptions MonoOpts;
  MonoOpts.UseShards = false;
  SolveResult Mono = solve(Gen.Sys, MonoOpts);

  SolveOptions ParOpts;
  ParOpts.Jobs = 4;
  ParOpts.ParallelMinConstraints = 0; // parallelize regardless of size
  SolveResult Parallel = solve(Gen.Sys, ParOpts);

  // Byte-domain oracle: the same three modes with the packed bitvector
  // representation swapped out for byte-per-variable lanes.
  SolveOptions ByteRawOpts = RawOpts;
  ByteRawOpts.PackedDomains = false;
  SolveResult ByteRaw = solve(Gen.Sys, ByteRawOpts);
  SolveOptions ByteOpts;
  ByteOpts.PackedDomains = false;
  SolveResult ByteSimplified = solve(Gen.Sys, ByteOpts);
  SolveOptions ByteParOpts = ParOpts;
  ByteParOpts.PackedDomains = false;
  SolveResult ByteParallel = solve(Gen.Sys, ByteParOpts);

  ASSERT_EQ(Raw.Sat, Simplified.Sat) << Label;
  ASSERT_EQ(Raw.Sat, Mono.Sat) << Label;
  ASSERT_EQ(Raw.Sat, Parallel.Sat) << Label;
  ASSERT_TRUE(Raw.Sat) << Label
                       << ": the conservative completion witnesses "
                          "satisfiability, so every generated system "
                          "must be Sat";
  EXPECT_EQ(Raw.StateDom, Simplified.StateDom) << Label;
  EXPECT_EQ(Raw.BoolDom, Simplified.BoolDom) << Label;
  // Sharded emission must be solution-preserving: bit-identical domains
  // against the monolithic pipeline, not merely equisatisfiable.
  EXPECT_EQ(Mono.StateDom, Simplified.StateDom) << Label;
  EXPECT_EQ(Mono.BoolDom, Simplified.BoolDom) << Label;
  EXPECT_EQ(Simplified.StateDom, Parallel.StateDom) << Label;
  EXPECT_EQ(Simplified.BoolDom, Parallel.BoolDom) << Label;

  // Packed vs byte domains: bit-identical results in every mode.
  ASSERT_EQ(ByteRaw.Sat, Raw.Sat) << Label;
  EXPECT_EQ(ByteRaw.StateDom, Raw.StateDom) << Label;
  EXPECT_EQ(ByteRaw.BoolDom, Raw.BoolDom) << Label;
  ASSERT_EQ(ByteSimplified.Sat, Simplified.Sat) << Label;
  EXPECT_EQ(ByteSimplified.StateDom, Simplified.StateDom) << Label;
  EXPECT_EQ(ByteSimplified.BoolDom, Simplified.BoolDom) << Label;
  ASSERT_EQ(ByteParallel.Sat, Parallel.Sat) << Label;
  EXPECT_EQ(ByteParallel.StateDom, Parallel.StateDom) << Label;
  EXPECT_EQ(ByteParallel.BoolDom, Parallel.BoolDom) << Label;

  // The preprocessing proof obligations: every Eq constraint collapsed,
  // never more residual than original constraints.
  EXPECT_EQ(Simplified.Simplify.EqRemoved,
            Gen.Sys.numConstraintsOfKind(Constraint::Kind::Eq))
      << Label;
  EXPECT_LE(Simplified.Simplify.ConstraintsAfter,
            Simplified.Simplify.ConstraintsBefore)
      << Label;
}

TEST(SolverDifferential, Table2Corpus) {
  for (const programs::BenchProgram &P : programs::table2Corpus())
    expectSolveModesAgree(P.Source, P.Name.c_str());
}

TEST(SolverDifferential, SmallCorpus) {
  for (const programs::BenchProgram &P : programs::smallCorpus())
    expectSolveModesAgree(P.Source, P.Name.c_str());
}

TEST(SolverDifferential, BuiltinScaledPrograms) {
  expectSolveModesAgree(programs::appelSource(20), "@appel 20");
  expectSolveModesAgree(programs::quicksortSource(12), "@quicksort 12");
  expectSolveModesAgree(programs::fibSource(10), "@fib 10");
  expectSolveModesAgree(programs::randlistSource(12), "@randlist 12");
  expectSolveModesAgree(programs::facSource(8), "@fac 8");
}

TEST(SolverDifferential, RandomPrograms500) {
  // 500 random programs across the generator's feature space, including
  // the closure-escape shapes that exercise conservative pinning.
  for (unsigned Seed = 0; Seed != 500; ++Seed) {
    programs::RandomProgramOptions Options;
    Options.HigherOrder = Seed % 3 != 0;
    Options.Recursion = Seed % 4 != 0;
    Options.ClosureEscape = Seed % 5 == 0;
    std::string Source = programs::generateRandomProgram(Seed, Options);
    std::string Label = "seed " + std::to_string(Seed);
    expectSolveModesAgree(Source, Label.c_str());
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace
