// Benchmark-corpus tests: every §6 program runs correctly under both
// completions, and the qualitative Table 2 relationships hold.

#include "driver/Pipeline.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

driver::PipelineResult runOk(const std::string &Source) {
  driver::PipelineResult R = driver::runPipeline(Source);
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return R;
}

class CorpusProgram
    : public ::testing::TestWithParam<programs::BenchProgram> {};

TEST_P(CorpusProgram, CorrectAndNeverWorse) {
  driver::PipelineResult R = runOk(GetParam().Source);
  if (!R.ok())
    return;
  EXPECT_EQ(R.Afl.ResultText, R.Reference.ResultText);
  EXPECT_EQ(R.Conservative.ResultText, R.Reference.ResultText);
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  EXPECT_LE(R.Afl.S.MaxRegions, R.Conservative.S.MaxRegions);
  EXPECT_EQ(R.Afl.S.TotalValueAllocs, R.Conservative.S.TotalValueAllocs);
  EXPECT_TRUE(R.Analysis.Solved);
}

INSTANTIATE_TEST_SUITE_P(
    Small, CorpusProgram, ::testing::ValuesIn(programs::smallCorpus()),
    [](const ::testing::TestParamInfo<programs::BenchProgram> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(Corpus, AppelAsymptotics) {
  // The headline result (§6, Figure 5): T-T residency grows
  // quadratically, A-F-L linearly. Compare growth factors when doubling n.
  auto MaxVals = [](int N) {
    driver::PipelineResult R = runOk(programs::appelSource(N));
    return std::make_pair(R.Conservative.S.MaxValues, R.Afl.S.MaxValues);
  };
  auto [TT25, AFL25] = MaxVals(25);
  auto [TT50, AFL50] = MaxVals(50);

  double TTGrowth = double(TT50) / double(TT25);
  double AFLGrowth = double(AFL50) / double(AFL25);
  EXPECT_GT(TTGrowth, 3.0) << "T-T should grow ~quadratically";
  EXPECT_LT(AFLGrowth, 2.5) << "A-F-L should grow ~linearly";

  // A-F-L keeps O(1) regions live on this program.
  driver::PipelineResult R = runOk(programs::appelSource(50));
  EXPECT_LE(R.Afl.S.MaxRegions, 16u);
  EXPECT_GE(R.Conservative.S.MaxRegions, 100u);
}

TEST(Corpus, QuicksortConstantFactor) {
  // §6: constant-factor improvement class. A-F-L should save at least
  // ~25% residency on quicksort.
  driver::PipelineResult R = runOk(programs::quicksortSource(40));
  EXPECT_LT(R.Afl.S.MaxValues * 4, R.Conservative.S.MaxValues * 3);
}

TEST(Corpus, FacNearlyIdentical) {
  // §6: the "nearly the same memory behavior" class — the improvement on
  // factorial is modest (same asymptotics; small constant).
  driver::PipelineResult R = runOk(programs::facSource(10));
  EXPECT_LE(R.Afl.S.MaxValues, R.Conservative.S.MaxValues);
  // Both are O(n): within a small constant factor of each other.
  EXPECT_LE(R.Conservative.S.MaxValues, 4 * R.Afl.S.MaxValues);
}

TEST(Corpus, QuicksortSortsCorrectly) {
  driver::PipelineResult R = runOk(programs::quicksortSource(30));
  // The rendered result must be sorted.
  std::string S = R.Afl.ResultText;
  ASSERT_FALSE(S.empty());
  long Prev = -1;
  size_t I = 1; // skip '['
  while (I < S.size() && S[I] != ']') {
    long V = 0;
    bool Any = false;
    while (I < S.size() && isdigit(static_cast<unsigned char>(S[I]))) {
      V = V * 10 + (S[I] - '0');
      ++I;
      Any = true;
    }
    if (Any) {
      EXPECT_LE(Prev, V);
      Prev = V;
    } else {
      ++I;
    }
  }
}

TEST(Corpus, Table2CorpusParses) {
  for (const programs::BenchProgram &P : programs::table2Corpus()) {
    driver::PipelineOptions Options;
    Options.SkipRuns = true; // analysis only; full runs live in bench/
    driver::PipelineResult R = driver::runPipeline(P.Source, Options);
    EXPECT_TRUE(R.ok()) << P.Name << ": " << R.Diags.str();
  }
}

} // namespace
