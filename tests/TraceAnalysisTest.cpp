// Tests for trace summarization and its use on real runs.

#include "driver/Pipeline.h"
#include "interp/TraceAnalysis.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::interp;

namespace {

TEST(TraceAnalysis, EmptyTrace) {
  TraceSummary S = summarizeTrace({});
  EXPECT_EQ(S.Peak, 0u);
  EXPECT_EQ(S.SpaceTime, 0u);
  EXPECT_EQ(S.Duration, 0u);
}

TEST(TraceAnalysis, HandComputed) {
  std::vector<TracePoint> Trace = {
      {1, 1}, {2, 2}, {3, 3}, {4, 2}, {5, 0},
  };
  TraceSummary S = summarizeTrace(Trace);
  EXPECT_EQ(S.Peak, 3u);
  EXPECT_EQ(S.PeakTime, 3u);
  EXPECT_EQ(S.SpaceTime, 8u);
  EXPECT_EQ(S.Final, 0u);
  EXPECT_EQ(S.Duration, 5u);
  EXPECT_DOUBLE_EQ(S.Mean, 8.0 / 5.0);
}

TEST(TraceAnalysis, AflSpaceTimeNeverWorseOnCorpus) {
  // The space-time product is a stronger metric than the peak: A-F-L
  // should beat T-T on it too (each value lives no longer).
  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    driver::PipelineOptions Options;
    Options.RecordTrace = true;
    driver::PipelineResult R = driver::runPipeline(P.Source, Options);
    ASSERT_TRUE(R.ok()) << P.Name;
    TraceSummary TT = summarizeTrace(R.Conservative.Trace);
    TraceSummary AFL = summarizeTrace(R.Afl.Trace);
    EXPECT_LE(AFL.Peak, TT.Peak) << P.Name;
    // Durations differ slightly (different numbers of region
    // operations), so compare mean residency.
    EXPECT_LE(AFL.Mean, TT.Mean * 1.01) << P.Name;
  }
}

TEST(TraceAnalysis, PeakMatchesInterpreterStat) {
  driver::PipelineOptions Options;
  Options.RecordTrace = true;
  driver::PipelineResult R =
      driver::runPipeline(programs::fibSource(7), Options);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(summarizeTrace(R.Afl.Trace).Peak, R.Afl.S.MaxValues);
  EXPECT_EQ(summarizeTrace(R.Conservative.Trace).Peak,
            R.Conservative.S.MaxValues);
}

} // namespace
