// Tests for the completion report (§7 programmer feedback).

#include "completion/Report.h"
#include "driver/Pipeline.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

using namespace afl;
using namespace afl::completion;

namespace {

TEST(Report, ConservativeIsAllLexical) {
  driver::PipelineResult R =
      driver::runPipeline(programs::example11Source());
  ASSERT_TRUE(R.ok());
  CompletionReport Rep = reportCompletion(*R.Prog, R.ConservativeC);
  EXPECT_EQ(Rep.NumLateAlloc + Rep.NumEarlyFree + Rep.NumNonLexical, 0u);
  EXPECT_EQ(Rep.NumLexical, Rep.Regions.size());
}

TEST(Report, AflFindsNonLexicalPlacements) {
  driver::PipelineResult R =
      driver::runPipeline(programs::example11Source());
  ASSERT_TRUE(R.ok());
  CompletionReport Rep = reportCompletion(*R.Prog, R.AflC);
  // The paper's optimal completion moves every region off the lexical
  // discipline on this example.
  EXPECT_EQ(Rep.NumLexical, 0u);
  EXPECT_GT(Rep.NumLateAlloc + Rep.NumNonLexical + Rep.NumEarlyFree, 0u);
  // The closure region is freed by free_app.
  bool SawFreeApp = false;
  for (const RegionReport &RR : Rep.Regions)
    SawFreeApp |= RR.NumFreeApp > 0;
  EXPECT_TRUE(SawFreeApp);
}

TEST(Report, CountsAreConsistent) {
  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    driver::PipelineResult R = driver::runPipeline(P.Source);
    ASSERT_TRUE(R.ok()) << P.Name;
    CompletionReport Rep = reportCompletion(*R.Prog, R.AflC);
    EXPECT_EQ(Rep.NumLexical + Rep.NumLateAlloc + Rep.NumEarlyFree +
                  Rep.NumNonLexical + Rep.NumUnused,
              Rep.Regions.size())
        << P.Name;
    // Every region either never allocates or allocates somewhere.
    for (const RegionReport &RR : Rep.Regions) {
      if (RR.Class == RegionClass::Unused) {
        EXPECT_TRUE(RR.AllocNodes.empty());
      } else {
        EXPECT_FALSE(RR.AllocNodes.empty());
      }
    }
  }
}

TEST(Report, RendersText) {
  driver::PipelineResult R = driver::runPipeline("1 + 2");
  ASSERT_TRUE(R.ok());
  std::string S = reportCompletion(*R.Prog, R.AflC).str();
  EXPECT_NE(S.find("completion report:"), std::string::npos);
  EXPECT_NE(S.find("r0"), std::string::npos);
}

TEST(Report, ClassNames) {
  EXPECT_STREQ(name(RegionClass::Lexical), "lexical");
  EXPECT_STREQ(name(RegionClass::LateAlloc), "late-alloc");
  EXPECT_STREQ(name(RegionClass::EarlyFree), "early-free");
  EXPECT_STREQ(name(RegionClass::NonLexical), "non-lexical");
  EXPECT_STREQ(name(RegionClass::Unused), "unused");
}

} // namespace
