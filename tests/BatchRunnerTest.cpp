// Tests for the thread-pooled batch runner: parallel runs must be
// deterministic and equal to sequential runs, failures must stay
// isolated to their own item, and the aggregates must add up.

#include "driver/BatchRunner.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include <cstdlib>
#include <sys/stat.h>

using namespace afl;

namespace {

namespace fs = std::filesystem;

/// A unique directory under the system temp dir, removed (with its
/// contents, permissions restored) on scope exit.
struct ScopedTempDir {
  fs::path Path;
  ScopedTempDir() {
    std::string Templ =
        (fs::temp_directory_path() / "afl-batch-XXXXXX").string();
    const char *Made = ::mkdtemp(Templ.data());
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : Templ.c_str();
  }
  ~ScopedTempDir() {
    std::error_code EC;
    // Re-open anything a test locked down so remove_all can descend.
    for (fs::recursive_directory_iterator
             It(Path, fs::directory_options::skip_permission_denied, EC),
         End;
         It != End; It.increment(EC)) {
      if (EC)
        break;
      ::chmod(It->path().c_str(), 0755);
    }
    fs::remove_all(Path, EC);
  }
  void write(const std::string &Rel, const std::string &Text) const {
    fs::path P = Path / Rel;
    fs::create_directories(P.parent_path());
    std::ofstream(P) << Text;
  }
};

/// Sorted by name, as aflc's batch mode presents them.
std::vector<driver::BatchItem> collectSorted(const fs::path &Dir,
                                             std::string &Error) {
  std::vector<driver::BatchItem> Work;
  EXPECT_TRUE(driver::collectBatchItems(Dir.string(), Work, Error)) << Error;
  std::sort(Work.begin(), Work.end(),
            [](const driver::BatchItem &A, const driver::BatchItem &B) {
              return A.Name < B.Name;
            });
  return Work;
}

TEST(CollectBatchItems, WalksNestedDirsWithRelativeNames) {
  ScopedTempDir Tmp;
  Tmp.write("a.afl", "1 + 2");
  Tmp.write("sub/b.afl", "2 * 3");
  Tmp.write("sub/deeper/c.afl", "4 - 1");
  Tmp.write("notes.txt", "not a program");
  std::string Error;
  std::vector<driver::BatchItem> Work = collectSorted(Tmp.Path, Error);
  ASSERT_EQ(Work.size(), 3u);
  EXPECT_EQ(Work[0].Name, "a.afl");
  EXPECT_EQ(Work[0].Source, "1 + 2");
  EXPECT_TRUE(Work[0].LoadError.empty());
  EXPECT_EQ(Work[1].Name, "sub/b.afl");
  EXPECT_EQ(Work[2].Name, "sub/deeper/c.afl");
}

TEST(CollectBatchItems, MissingRootIsBatchLevelError) {
  ScopedTempDir Tmp;
  std::vector<driver::BatchItem> Work;
  std::string Error;
  EXPECT_FALSE(driver::collectBatchItems(
      (Tmp.Path / "does-not-exist").string(), Work, Error));
  EXPECT_NE(Error.find("cannot read directory"), std::string::npos);
  EXPECT_TRUE(Work.empty());
}

TEST(CollectBatchItems, EmptyAfterFilterYieldsEmptyWork) {
  // A readable directory with no .afl files is not an error from the
  // walker's point of view; the caller decides what an empty batch
  // means.
  ScopedTempDir Tmp;
  Tmp.write("readme.md", "# nothing to run");
  Tmp.write("sub/data.json", "{}");
  std::vector<driver::BatchItem> Work;
  std::string Error;
  EXPECT_TRUE(driver::collectBatchItems(Tmp.Path.string(), Work, Error));
  EXPECT_TRUE(Work.empty());
}

TEST(CollectBatchItems, DanglingSymlinkBecomesFailedItem) {
  ScopedTempDir Tmp;
  Tmp.write("good.afl", "1 + 2");
  std::error_code EC;
  fs::create_symlink(Tmp.Path / "nowhere.afl", Tmp.Path / "broken.afl", EC);
  ASSERT_FALSE(EC) << EC.message();
  std::string Error;
  std::vector<driver::BatchItem> Work = collectSorted(Tmp.Path, Error);
  ASSERT_EQ(Work.size(), 2u);
  EXPECT_EQ(Work[0].Name, "broken.afl");
  EXPECT_FALSE(Work[0].LoadError.empty());
  EXPECT_EQ(Work[1].Name, "good.afl");
  EXPECT_TRUE(Work[1].LoadError.empty());

  // The failed item flows through runBatch as a failed row; the sibling
  // still runs.
  driver::BatchResult B =
      driver::runBatch(Work, driver::PipelineOptions(), 2);
  EXPECT_EQ(B.NumOk, 1u);
  EXPECT_EQ(B.NumFailed, 1u);
  EXPECT_EQ(B.Items[1].ResultText, "3");
}

TEST(CollectBatchItems, UnreadableInputBecomesFailedItem) {
  // Unreadable-by-construction: a `.afl` entry that resolves to a
  // directory can never be read as a program, on any host — including
  // root CI containers, where chmod-000 permission denials do not fire.
  ScopedTempDir Tmp;
  Tmp.write("good.afl", "1 + 2");
  fs::create_directories(Tmp.Path / "target-dir");
  std::error_code EC;
  fs::create_directory_symlink(Tmp.Path / "target-dir",
                               Tmp.Path / "trap.afl", EC);
  ASSERT_FALSE(EC) << EC.message();
  std::string Error;
  std::vector<driver::BatchItem> Work = collectSorted(Tmp.Path, Error);
  ASSERT_EQ(Work.size(), 2u);
  EXPECT_EQ(Work[0].Name, "good.afl");
  EXPECT_TRUE(Work[0].LoadError.empty());
  EXPECT_EQ(Work[1].Name, "trap.afl");
  EXPECT_NE(Work[1].LoadError.find("not a regular file"), std::string::npos);

  // The fault stays isolated: the failed item flows through runBatch as
  // a failed row while the sibling still runs.
  driver::BatchResult B =
      driver::runBatch(Work, driver::PipelineOptions(), 2);
  EXPECT_EQ(B.NumOk, 1u);
  EXPECT_EQ(B.NumFailed, 1u);
  EXPECT_EQ(B.Items[0].ResultText, "3");
}

TEST(CollectBatchItems, PermissionDeniedSubdirBecomesFailedItem) {
  // The classic chmod-000 denial, kept for hosts that do enforce it; on
  // root containers (where the probe shows no denial) the walker must
  // instead descend cleanly and find the hidden program.
  ScopedTempDir Tmp;
  Tmp.write("good.afl", "1 + 2");
  Tmp.write("locked/hidden.afl", "2 + 2");
  ASSERT_EQ(::chmod((Tmp.Path / "locked").c_str(), 0000), 0);
  std::error_code Probe;
  fs::directory_iterator It(Tmp.Path / "locked", Probe);
  std::string Error;
  std::vector<driver::BatchItem> Work = collectSorted(Tmp.Path, Error);
  ASSERT_EQ(Work.size(), 2u);
  EXPECT_EQ(Work[0].Name, "good.afl");
  EXPECT_TRUE(Work[0].LoadError.empty());
  if (Probe) {
    EXPECT_EQ(Work[1].Name, "locked");
    EXPECT_NE(Work[1].LoadError.find("cannot read directory"),
              std::string::npos);
  } else {
    EXPECT_EQ(Work[1].Name, "locked/hidden.afl");
    EXPECT_TRUE(Work[1].LoadError.empty());
    EXPECT_EQ(Work[1].Source, "2 + 2");
  }
}

TEST(CollectBatchItems, FaultySiblingsSurviveFullBatchRun) {
  // The acceptance scenario end to end: a directory holding a
  // permission-denied subdirectory, a dangling symlink, and a 100k-deep
  // nested .afl program must produce a complete batch — failed rows for
  // the faults, results for the healthy items, no crash, no stack
  // overflow.
  ScopedTempDir Tmp;
  Tmp.write("ok.afl", "21 * 2");
  Tmp.write("locked/hidden.afl", "1");
  ::chmod((Tmp.Path / "locked").c_str(), 0000); // no-op as root; still walked
  std::error_code EC;
  fs::create_symlink(Tmp.Path / "gone.afl", Tmp.Path / "dangling.afl", EC);
  ASSERT_FALSE(EC) << EC.message();
  // An unreadable-by-construction fault that fires even as root.
  fs::create_directories(Tmp.Path / "not-a-file");
  fs::create_directory_symlink(Tmp.Path / "not-a-file",
                               Tmp.Path / "trap.afl", EC);
  ASSERT_FALSE(EC) << EC.message();
  const int Depth = 100000;
  std::string Deep(static_cast<size_t>(Depth), '(');
  Deep += "1";
  Deep.append(static_cast<size_t>(Depth), ')');
  Tmp.write("deep.afl", Deep);

  std::string Error;
  std::vector<driver::BatchItem> Work = collectSorted(Tmp.Path, Error);
  driver::BatchResult B =
      driver::runBatch(Work, driver::PipelineOptions(), 2);
  ASSERT_EQ(B.Items.size(), Work.size());
  // dangling symlink + depth-limited parse + directory-shaped .afl
  EXPECT_GE(B.NumFailed, 3u);
  bool SawOk = false, SawDeep = false, SawDangling = false, SawTrap = false;
  for (const driver::BatchItemResult &Item : B.Items) {
    if (Item.Name == "ok.afl") {
      SawOk = true;
      EXPECT_TRUE(Item.Ok);
      EXPECT_EQ(Item.ResultText, "42");
    } else if (Item.Name == "deep.afl") {
      SawDeep = true;
      EXPECT_FALSE(Item.Ok);
      EXPECT_NE(Item.Error.find("expression nesting too deep"),
                std::string::npos);
    } else if (Item.Name == "dangling.afl") {
      SawDangling = true;
      EXPECT_FALSE(Item.Ok);
      EXPECT_FALSE(Item.Error.empty());
    } else if (Item.Name == "trap.afl") {
      SawTrap = true;
      EXPECT_FALSE(Item.Ok);
      EXPECT_NE(Item.Error.find("not a regular file"), std::string::npos);
    }
  }
  EXPECT_TRUE(SawOk);
  EXPECT_TRUE(SawDeep);
  EXPECT_TRUE(SawDangling);
  EXPECT_TRUE(SawTrap);
}

TEST(CollectBatchItems, EmptyFileIsALegitimateItem) {
  // An empty .afl reads as an empty source (failbit on rdbuf insert is
  // not a read error); it then fails in the parser like any other bad
  // program, not in the loader.
  ScopedTempDir Tmp;
  Tmp.write("empty.afl", "");
  std::string Error;
  std::vector<driver::BatchItem> Work = collectSorted(Tmp.Path, Error);
  ASSERT_EQ(Work.size(), 1u);
  EXPECT_TRUE(Work[0].LoadError.empty());
  EXPECT_TRUE(Work[0].Source.empty());
  driver::BatchResult B =
      driver::runBatch(Work, driver::PipelineOptions(), 1);
  EXPECT_EQ(B.NumFailed, 1u);
}

std::vector<driver::BatchItem> corpusWork() {
  std::vector<driver::BatchItem> Work;
  for (const programs::BenchProgram &P : programs::smallCorpus())
    Work.push_back({P.Name, P.Source, ""});
  return Work;
}

TEST(BatchRunner, ParallelMatchesSequential) {
  std::vector<driver::BatchItem> Work = corpusWork();
  driver::BatchResult Seq =
      driver::runBatch(Work, driver::PipelineOptions(), 1);
  driver::BatchResult Par =
      driver::runBatch(Work, driver::PipelineOptions(), 4);

  ASSERT_EQ(Seq.Items.size(), Work.size());
  ASSERT_EQ(Par.Items.size(), Work.size());
  EXPECT_EQ(Seq.NumOk, Work.size());
  EXPECT_EQ(Par.NumOk, Work.size());

  for (size_t I = 0; I != Work.size(); ++I) {
    const driver::BatchItemResult &S = Seq.Items[I];
    const driver::BatchItemResult &P = Par.Items[I];
    // Results stay in input order whatever the schedule.
    EXPECT_EQ(S.Name, Work[I].Name);
    EXPECT_EQ(P.Name, Work[I].Name);
    // Identical per-file outcomes: value, memory metrics, solver work.
    EXPECT_EQ(S.ResultText, P.ResultText) << S.Name;
    EXPECT_EQ(S.AflStats.MaxValues, P.AflStats.MaxValues) << S.Name;
    EXPECT_EQ(S.AflStats.TotalRegionAllocs, P.AflStats.TotalRegionAllocs)
        << S.Name;
    EXPECT_EQ(S.ConservativeStats.MaxValues, P.ConservativeStats.MaxValues)
        << S.Name;
    EXPECT_EQ(S.Analysis.SolverPropagations, P.Analysis.SolverPropagations)
        << S.Name;
    EXPECT_EQ(S.Analysis.NumConstraints, P.Analysis.NumConstraints)
        << S.Name;
  }
}

TEST(BatchRunner, FailuresAreIsolated) {
  std::vector<driver::BatchItem> Work = {
      {"good1", "1 + 2", ""},
      {"bad-parse", "let x = in x end", ""},
      {"bad-type", "1 + true", ""},
      {"good2", "letrec f n = if n = 0 then 0 else f (n - 1) in f 3 end", ""},
  };
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 2);
  ASSERT_EQ(B.Items.size(), 4u);
  EXPECT_EQ(B.NumOk, 2u);
  EXPECT_EQ(B.NumFailed, 2u);
  EXPECT_FALSE(B.allOk());
  EXPECT_TRUE(B.Items[0].Ok);
  EXPECT_FALSE(B.Items[1].Ok);
  EXPECT_FALSE(B.Items[1].Error.empty());
  EXPECT_FALSE(B.Items[2].Ok);
  EXPECT_TRUE(B.Items[3].Ok);
  EXPECT_EQ(B.Items[0].ResultText, "3");
  EXPECT_EQ(B.Items[3].ResultText, "0");
}

TEST(BatchRunner, AggregatesSumPerItemStats) {
  std::vector<driver::BatchItem> Work = corpusWork();
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 3);

  uint64_t Props = 0, ValueAllocs = 0;
  double Cpu = 0;
  for (const driver::BatchItemResult &Item : B.Items) {
    Props += Item.Analysis.SolverPropagations;
    ValueAllocs += Item.AflStats.TotalValueAllocs;
    Cpu += Item.Stats.TotalSeconds;
  }
  EXPECT_EQ(B.AggregateAnalysis.SolverPropagations, Props);
  EXPECT_EQ(B.AggregateAfl.TotalValueAllocs, ValueAllocs);
  EXPECT_DOUBLE_EQ(B.AggregateStats.TotalSeconds, Cpu);
  EXPECT_TRUE(B.HasRuns);
  EXPECT_GT(B.WallSeconds, 0.0);
  EXPECT_GE(B.Threads, 1u);
}

TEST(BatchRunner, MetricsEmissionIsValidAndComplete) {
  std::vector<driver::BatchItem> Work = {
      {"a.afl", "1 + 2", ""},
      {"b.afl", "(let z = (2, 3) in fn y => (fst z, y) end) 5", ""},
  };
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 2);
  MetricsRegistry Reg;
  B.recordMetrics(Reg);
  EXPECT_EQ(Reg.counter("files"), 2u);
  EXPECT_EQ(Reg.counter("ok"), 2u);
  EXPECT_TRUE(Reg.has("aggregate/stages/solve"));
  EXPECT_TRUE(Reg.has("programs/a.afl/stages/parse"));
  EXPECT_TRUE(Reg.has("programs/b.afl/runs/afl"));
  EXPECT_EQ(Reg.counter("programs/b.afl/ok"), 1u);
  EXPECT_GT(Reg.timer("aggregate/total_seconds"), 0.0);
}

TEST(BatchRunner, LoadErrorItemFailsWithoutAbortingBatch) {
  std::vector<driver::BatchItem> Work = {
      {"good", "1 + 2", ""},
      {"missing.afl", "", "cannot open 'missing.afl'"},
      {"also-good", "2 * 21", ""},
  };
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 2);
  ASSERT_EQ(B.Items.size(), 3u);
  EXPECT_EQ(B.NumOk, 2u);
  EXPECT_EQ(B.NumFailed, 1u);
  EXPECT_FALSE(B.allOk());
  EXPECT_TRUE(B.Items[0].Ok);
  EXPECT_FALSE(B.Items[1].Ok);
  // The loader's message is the item's error, and the pipeline never ran
  // for it (no runs, zero stats).
  EXPECT_EQ(B.Items[1].Error, "cannot open 'missing.afl'");
  EXPECT_FALSE(B.Items[1].HasRuns);
  EXPECT_EQ(B.Items[1].Stats.AstNodes, 0u);
  EXPECT_TRUE(B.Items[2].Ok);
  EXPECT_EQ(B.Items[2].ResultText, "42");

  MetricsRegistry Reg;
  B.recordMetrics(Reg);
  EXPECT_EQ(Reg.counter("failed"), 1u);
  EXPECT_EQ(Reg.counter("programs/missing.afl/ok"), 0u);
  EXPECT_EQ(Reg.text("programs/missing.afl/error"),
            "cannot open 'missing.afl'");
}

TEST(BatchRunner, AggregateRunsReportTrueMaximaAndSums) {
  // Two programs with different footprints: the aggregate max_* must be
  // the larger per-item peak, not the sum of both peaks.
  std::vector<driver::BatchItem> Work = {
      {"small", "1 + 2", ""},
      {"big", "letrec f n = if n = 0 then nil else n :: f (n - 1) "
              "in f 20 end",
       ""},
  };
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 2);
  ASSERT_TRUE(B.allOk());
  ASSERT_TRUE(B.HasRuns);

  uint64_t PeakAfl = 0, SumAfl = 0, PeakCons = 0, SumCons = 0;
  for (const driver::BatchItemResult &Item : B.Items) {
    PeakAfl = std::max(PeakAfl, Item.AflStats.MaxValues);
    SumAfl += Item.AflStats.MaxValues;
    PeakCons = std::max(PeakCons, Item.ConservativeStats.MaxValues);
    SumCons += Item.ConservativeStats.MaxValues;
  }
  ASSERT_LT(PeakAfl, SumAfl); // both items contribute, so max != sum
  EXPECT_EQ(B.PeakAfl.MaxValues, PeakAfl);
  EXPECT_EQ(B.AggregateAfl.MaxValues, SumAfl);
  EXPECT_EQ(B.PeakConservative.MaxValues, PeakCons);
  EXPECT_EQ(B.AggregateConservative.MaxValues, SumCons);

  MetricsRegistry Reg;
  B.recordMetrics(Reg);
  EXPECT_EQ(Reg.counter("aggregate/runs/afl/max_values"), PeakAfl);
  EXPECT_EQ(Reg.counter("aggregate/runs/afl/total_max_values"), SumAfl);
  EXPECT_EQ(Reg.counter("aggregate/runs/conservative/max_values"), PeakCons);
  EXPECT_EQ(Reg.counter("aggregate/runs/conservative/total_max_values"),
            SumCons);
}

TEST(BatchRunner, EmptyBatch) {
  driver::BatchResult B =
      driver::runBatch({}, driver::PipelineOptions(), 4);
  EXPECT_TRUE(B.Items.empty());
  EXPECT_EQ(B.NumOk, 0u);
  EXPECT_TRUE(B.allOk());
}

TEST(BatchRunner, RespectsSkipRuns) {
  driver::PipelineOptions Options;
  Options.SkipRuns = true;
  driver::BatchResult B = driver::runBatch(corpusWork(), Options, 2);
  EXPECT_EQ(B.NumOk, B.Items.size());
  EXPECT_FALSE(B.HasRuns);
  for (const driver::BatchItemResult &Item : B.Items)
    EXPECT_TRUE(Item.ResultText.empty());
}

} // namespace
