// Tests for the thread-pooled batch runner: parallel runs must be
// deterministic and equal to sequential runs, failures must stay
// isolated to their own item, and the aggregates must add up.

#include "driver/BatchRunner.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

using namespace afl;

namespace {

std::vector<driver::BatchItem> corpusWork() {
  std::vector<driver::BatchItem> Work;
  for (const programs::BenchProgram &P : programs::smallCorpus())
    Work.push_back({P.Name, P.Source});
  return Work;
}

TEST(BatchRunner, ParallelMatchesSequential) {
  std::vector<driver::BatchItem> Work = corpusWork();
  driver::BatchResult Seq =
      driver::runBatch(Work, driver::PipelineOptions(), 1);
  driver::BatchResult Par =
      driver::runBatch(Work, driver::PipelineOptions(), 4);

  ASSERT_EQ(Seq.Items.size(), Work.size());
  ASSERT_EQ(Par.Items.size(), Work.size());
  EXPECT_EQ(Seq.NumOk, Work.size());
  EXPECT_EQ(Par.NumOk, Work.size());

  for (size_t I = 0; I != Work.size(); ++I) {
    const driver::BatchItemResult &S = Seq.Items[I];
    const driver::BatchItemResult &P = Par.Items[I];
    // Results stay in input order whatever the schedule.
    EXPECT_EQ(S.Name, Work[I].Name);
    EXPECT_EQ(P.Name, Work[I].Name);
    // Identical per-file outcomes: value, memory metrics, solver work.
    EXPECT_EQ(S.ResultText, P.ResultText) << S.Name;
    EXPECT_EQ(S.AflStats.MaxValues, P.AflStats.MaxValues) << S.Name;
    EXPECT_EQ(S.AflStats.TotalRegionAllocs, P.AflStats.TotalRegionAllocs)
        << S.Name;
    EXPECT_EQ(S.ConservativeStats.MaxValues, P.ConservativeStats.MaxValues)
        << S.Name;
    EXPECT_EQ(S.Analysis.SolverPropagations, P.Analysis.SolverPropagations)
        << S.Name;
    EXPECT_EQ(S.Analysis.NumConstraints, P.Analysis.NumConstraints)
        << S.Name;
  }
}

TEST(BatchRunner, FailuresAreIsolated) {
  std::vector<driver::BatchItem> Work = {
      {"good1", "1 + 2"},
      {"bad-parse", "let x = in x end"},
      {"bad-type", "1 + true"},
      {"good2", "letrec f n = if n = 0 then 0 else f (n - 1) in f 3 end"},
  };
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 2);
  ASSERT_EQ(B.Items.size(), 4u);
  EXPECT_EQ(B.NumOk, 2u);
  EXPECT_EQ(B.NumFailed, 2u);
  EXPECT_FALSE(B.allOk());
  EXPECT_TRUE(B.Items[0].Ok);
  EXPECT_FALSE(B.Items[1].Ok);
  EXPECT_FALSE(B.Items[1].Error.empty());
  EXPECT_FALSE(B.Items[2].Ok);
  EXPECT_TRUE(B.Items[3].Ok);
  EXPECT_EQ(B.Items[0].ResultText, "3");
  EXPECT_EQ(B.Items[3].ResultText, "0");
}

TEST(BatchRunner, AggregatesSumPerItemStats) {
  std::vector<driver::BatchItem> Work = corpusWork();
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 3);

  uint64_t Props = 0, ValueAllocs = 0;
  double Cpu = 0;
  for (const driver::BatchItemResult &Item : B.Items) {
    Props += Item.Analysis.SolverPropagations;
    ValueAllocs += Item.AflStats.TotalValueAllocs;
    Cpu += Item.Stats.TotalSeconds;
  }
  EXPECT_EQ(B.AggregateAnalysis.SolverPropagations, Props);
  EXPECT_EQ(B.AggregateAfl.TotalValueAllocs, ValueAllocs);
  EXPECT_DOUBLE_EQ(B.AggregateStats.TotalSeconds, Cpu);
  EXPECT_TRUE(B.HasRuns);
  EXPECT_GT(B.WallSeconds, 0.0);
  EXPECT_GE(B.Threads, 1u);
}

TEST(BatchRunner, MetricsEmissionIsValidAndComplete) {
  std::vector<driver::BatchItem> Work = {
      {"a.afl", "1 + 2"},
      {"b.afl", "(let z = (2, 3) in fn y => (fst z, y) end) 5"},
  };
  driver::BatchResult B = driver::runBatch(Work, driver::PipelineOptions(), 2);
  MetricsRegistry Reg;
  B.recordMetrics(Reg);
  EXPECT_EQ(Reg.counter("files"), 2u);
  EXPECT_EQ(Reg.counter("ok"), 2u);
  EXPECT_TRUE(Reg.has("aggregate/stages/solve"));
  EXPECT_TRUE(Reg.has("programs/a.afl/stages/parse"));
  EXPECT_TRUE(Reg.has("programs/b.afl/runs/afl"));
  EXPECT_EQ(Reg.counter("programs/b.afl/ok"), 1u);
  EXPECT_GT(Reg.timer("aggregate/total_seconds"), 0.0);
}

TEST(BatchRunner, EmptyBatch) {
  driver::BatchResult B =
      driver::runBatch({}, driver::PipelineOptions(), 4);
  EXPECT_TRUE(B.Items.empty());
  EXPECT_EQ(B.NumOk, 0u);
  EXPECT_TRUE(B.allOk());
}

TEST(BatchRunner, RespectsSkipRuns) {
  driver::PipelineOptions Options;
  Options.SkipRuns = true;
  driver::BatchResult B = driver::runBatch(corpusWork(), Options, 2);
  EXPECT_EQ(B.NumOk, B.Items.size());
  EXPECT_FALSE(B.HasRuns);
  for (const driver::BatchItemResult &Item : B.Items)
    EXPECT_TRUE(Item.ResultText.empty());
}

} // namespace
