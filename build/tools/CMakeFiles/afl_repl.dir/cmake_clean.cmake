file(REMOVE_RECURSE
  "CMakeFiles/afl_repl.dir/afl_repl.cpp.o"
  "CMakeFiles/afl_repl.dir/afl_repl.cpp.o.d"
  "afl_repl"
  "afl_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afl_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
