# Empty dependencies file for afl_repl.
# This may be replaced when dependencies are built.
