# Empty compiler generated dependencies file for aflc.
# This may be replaced when dependencies are built.
