file(REMOVE_RECURSE
  "CMakeFiles/aflc.dir/aflc.cpp.o"
  "CMakeFiles/aflc.dir/aflc.cpp.o.d"
  "aflc"
  "aflc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aflc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
