# Empty dependencies file for aflregion.
# This may be replaced when dependencies are built.
