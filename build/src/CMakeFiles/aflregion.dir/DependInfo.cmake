
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ExprPrinter.cpp" "src/CMakeFiles/aflregion.dir/ast/ExprPrinter.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/ast/ExprPrinter.cpp.o.d"
  "/root/repo/src/closure/AbstractEnv.cpp" "src/CMakeFiles/aflregion.dir/closure/AbstractEnv.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/closure/AbstractEnv.cpp.o.d"
  "/root/repo/src/closure/ClosureAnalysis.cpp" "src/CMakeFiles/aflregion.dir/closure/ClosureAnalysis.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/closure/ClosureAnalysis.cpp.o.d"
  "/root/repo/src/completion/AflCompletion.cpp" "src/CMakeFiles/aflregion.dir/completion/AflCompletion.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/completion/AflCompletion.cpp.o.d"
  "/root/repo/src/completion/Conservative.cpp" "src/CMakeFiles/aflregion.dir/completion/Conservative.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/completion/Conservative.cpp.o.d"
  "/root/repo/src/completion/Report.cpp" "src/CMakeFiles/aflregion.dir/completion/Report.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/completion/Report.cpp.o.d"
  "/root/repo/src/completion/StorageModes.cpp" "src/CMakeFiles/aflregion.dir/completion/StorageModes.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/completion/StorageModes.cpp.o.d"
  "/root/repo/src/constraints/ConstraintGen.cpp" "src/CMakeFiles/aflregion.dir/constraints/ConstraintGen.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/constraints/ConstraintGen.cpp.o.d"
  "/root/repo/src/constraints/ConstraintPrinter.cpp" "src/CMakeFiles/aflregion.dir/constraints/ConstraintPrinter.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/constraints/ConstraintPrinter.cpp.o.d"
  "/root/repo/src/driver/Pipeline.cpp" "src/CMakeFiles/aflregion.dir/driver/Pipeline.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/driver/Pipeline.cpp.o.d"
  "/root/repo/src/interp/Interp.cpp" "src/CMakeFiles/aflregion.dir/interp/Interp.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/interp/Interp.cpp.o.d"
  "/root/repo/src/interp/RefInterp.cpp" "src/CMakeFiles/aflregion.dir/interp/RefInterp.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/interp/RefInterp.cpp.o.d"
  "/root/repo/src/interp/TraceAnalysis.cpp" "src/CMakeFiles/aflregion.dir/interp/TraceAnalysis.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/interp/TraceAnalysis.cpp.o.d"
  "/root/repo/src/lexer/Lexer.cpp" "src/CMakeFiles/aflregion.dir/lexer/Lexer.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/lexer/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/aflregion.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/programs/Corpus.cpp" "src/CMakeFiles/aflregion.dir/programs/Corpus.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/programs/Corpus.cpp.o.d"
  "/root/repo/src/programs/RandomProgram.cpp" "src/CMakeFiles/aflregion.dir/programs/RandomProgram.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/programs/RandomProgram.cpp.o.d"
  "/root/repo/src/regions/RegionFinalize.cpp" "src/CMakeFiles/aflregion.dir/regions/RegionFinalize.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/regions/RegionFinalize.cpp.o.d"
  "/root/repo/src/regions/RegionInference.cpp" "src/CMakeFiles/aflregion.dir/regions/RegionInference.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/regions/RegionInference.cpp.o.d"
  "/root/repo/src/regions/RegionPrinter.cpp" "src/CMakeFiles/aflregion.dir/regions/RegionPrinter.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/regions/RegionPrinter.cpp.o.d"
  "/root/repo/src/regions/RegionProgram.cpp" "src/CMakeFiles/aflregion.dir/regions/RegionProgram.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/regions/RegionProgram.cpp.o.d"
  "/root/repo/src/regions/RegionTypes.cpp" "src/CMakeFiles/aflregion.dir/regions/RegionTypes.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/regions/RegionTypes.cpp.o.d"
  "/root/repo/src/regions/Validator.cpp" "src/CMakeFiles/aflregion.dir/regions/Validator.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/regions/Validator.cpp.o.d"
  "/root/repo/src/solver/Solver.cpp" "src/CMakeFiles/aflregion.dir/solver/Solver.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/solver/Solver.cpp.o.d"
  "/root/repo/src/support/Arena.cpp" "src/CMakeFiles/aflregion.dir/support/Arena.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/support/Arena.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/aflregion.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/SourceLoc.cpp" "src/CMakeFiles/aflregion.dir/support/SourceLoc.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/support/SourceLoc.cpp.o.d"
  "/root/repo/src/support/StringInterner.cpp" "src/CMakeFiles/aflregion.dir/support/StringInterner.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/support/StringInterner.cpp.o.d"
  "/root/repo/src/types/Type.cpp" "src/CMakeFiles/aflregion.dir/types/Type.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/types/Type.cpp.o.d"
  "/root/repo/src/types/TypeInference.cpp" "src/CMakeFiles/aflregion.dir/types/TypeInference.cpp.o" "gcc" "src/CMakeFiles/aflregion.dir/types/TypeInference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
