file(REMOVE_RECURSE
  "libaflregion.a"
)
