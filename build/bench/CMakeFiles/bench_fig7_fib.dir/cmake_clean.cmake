file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fib.dir/bench_fig7_fib.cpp.o"
  "CMakeFiles/bench_fig7_fib.dir/bench_fig7_fib.cpp.o.d"
  "bench_fig7_fib"
  "bench_fig7_fib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
