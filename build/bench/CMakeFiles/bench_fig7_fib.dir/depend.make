# Empty dependencies file for bench_fig7_fib.
# This may be replaced when dependencies are built.
