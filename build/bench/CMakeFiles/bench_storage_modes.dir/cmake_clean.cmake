file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_modes.dir/bench_storage_modes.cpp.o"
  "CMakeFiles/bench_storage_modes.dir/bench_storage_modes.cpp.o.d"
  "bench_storage_modes"
  "bench_storage_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
