# Empty dependencies file for bench_storage_modes.
# This may be replaced when dependencies are built.
