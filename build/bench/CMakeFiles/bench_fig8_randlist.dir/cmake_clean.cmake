file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_randlist.dir/bench_fig8_randlist.cpp.o"
  "CMakeFiles/bench_fig8_randlist.dir/bench_fig8_randlist.cpp.o.d"
  "bench_fig8_randlist"
  "bench_fig8_randlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_randlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
