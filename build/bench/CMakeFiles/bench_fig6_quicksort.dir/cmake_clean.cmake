file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_quicksort.dir/bench_fig6_quicksort.cpp.o"
  "CMakeFiles/bench_fig6_quicksort.dir/bench_fig6_quicksort.cpp.o.d"
  "bench_fig6_quicksort"
  "bench_fig6_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
