file(REMOVE_RECURSE
  "CMakeFiles/bench_never_worse.dir/bench_never_worse.cpp.o"
  "CMakeFiles/bench_never_worse.dir/bench_never_worse.cpp.o.d"
  "bench_never_worse"
  "bench_never_worse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_never_worse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
