# Empty dependencies file for bench_never_worse.
# This may be replaced when dependencies are built.
