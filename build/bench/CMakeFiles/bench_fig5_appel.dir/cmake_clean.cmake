file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_appel.dir/bench_fig5_appel.cpp.o"
  "CMakeFiles/bench_fig5_appel.dir/bench_fig5_appel.cpp.o.d"
  "bench_fig5_appel"
  "bench_fig5_appel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_appel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
