# Empty dependencies file for bench_fig5_appel.
# This may be replaced when dependencies are built.
