
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ClosureAnalysisTest.cpp" "tests/CMakeFiles/afl_tests.dir/ClosureAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/ClosureAnalysisTest.cpp.o.d"
  "/root/repo/tests/CompletionTest.cpp" "tests/CMakeFiles/afl_tests.dir/CompletionTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/CompletionTest.cpp.o.d"
  "/root/repo/tests/ConstraintPrinterTest.cpp" "tests/CMakeFiles/afl_tests.dir/ConstraintPrinterTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/ConstraintPrinterTest.cpp.o.d"
  "/root/repo/tests/CorpusTest.cpp" "tests/CMakeFiles/afl_tests.dir/CorpusTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/CorpusTest.cpp.o.d"
  "/root/repo/tests/DriverTest.cpp" "tests/CMakeFiles/afl_tests.dir/DriverTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/DriverTest.cpp.o.d"
  "/root/repo/tests/EscapePoolTest.cpp" "tests/CMakeFiles/afl_tests.dir/EscapePoolTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/EscapePoolTest.cpp.o.d"
  "/root/repo/tests/ExhaustiveTest.cpp" "tests/CMakeFiles/afl_tests.dir/ExhaustiveTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/ExhaustiveTest.cpp.o.d"
  "/root/repo/tests/InterpTest.cpp" "tests/CMakeFiles/afl_tests.dir/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/InterpTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/afl_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/PaperExamplesTest.cpp" "tests/CMakeFiles/afl_tests.dir/PaperExamplesTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/PaperExamplesTest.cpp.o.d"
  "/root/repo/tests/ParserFuzzTest.cpp" "tests/CMakeFiles/afl_tests.dir/ParserFuzzTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/ParserFuzzTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/afl_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PatternBinderTest.cpp" "tests/CMakeFiles/afl_tests.dir/PatternBinderTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/PatternBinderTest.cpp.o.d"
  "/root/repo/tests/PipelineSmokeTest.cpp" "tests/CMakeFiles/afl_tests.dir/PipelineSmokeTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/PipelineSmokeTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/afl_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/RandomProgramTest.cpp" "tests/CMakeFiles/afl_tests.dir/RandomProgramTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/RandomProgramTest.cpp.o.d"
  "/root/repo/tests/RegionInferenceTest.cpp" "tests/CMakeFiles/afl_tests.dir/RegionInferenceTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/RegionInferenceTest.cpp.o.d"
  "/root/repo/tests/RegionPrinterTest.cpp" "tests/CMakeFiles/afl_tests.dir/RegionPrinterTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/RegionPrinterTest.cpp.o.d"
  "/root/repo/tests/RegionTypesTest.cpp" "tests/CMakeFiles/afl_tests.dir/RegionTypesTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/RegionTypesTest.cpp.o.d"
  "/root/repo/tests/ReportTest.cpp" "tests/CMakeFiles/afl_tests.dir/ReportTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/ReportTest.cpp.o.d"
  "/root/repo/tests/ScalingTest.cpp" "tests/CMakeFiles/afl_tests.dir/ScalingTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/ScalingTest.cpp.o.d"
  "/root/repo/tests/SolverTest.cpp" "tests/CMakeFiles/afl_tests.dir/SolverTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/SolverTest.cpp.o.d"
  "/root/repo/tests/StorageModesTest.cpp" "tests/CMakeFiles/afl_tests.dir/StorageModesTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/StorageModesTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/afl_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TraceAnalysisTest.cpp" "tests/CMakeFiles/afl_tests.dir/TraceAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/TraceAnalysisTest.cpp.o.d"
  "/root/repo/tests/TypeInferenceTest.cpp" "tests/CMakeFiles/afl_tests.dir/TypeInferenceTest.cpp.o" "gcc" "tests/CMakeFiles/afl_tests.dir/TypeInferenceTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aflregion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
