# Empty dependencies file for afl_tests.
# This may be replaced when dependencies are built.
