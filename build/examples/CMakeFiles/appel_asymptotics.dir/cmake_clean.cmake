file(REMOVE_RECURSE
  "CMakeFiles/appel_asymptotics.dir/appel_asymptotics.cpp.o"
  "CMakeFiles/appel_asymptotics.dir/appel_asymptotics.cpp.o.d"
  "appel_asymptotics"
  "appel_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appel_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
