# Empty dependencies file for appel_asymptotics.
# This may be replaced when dependencies are built.
