//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the reproduction benchmarks: run a program under
/// both completions with traces enabled, and print memory-over-time
/// series in a plot-friendly CSV form (downsampled, peak-preserving).
///
//===----------------------------------------------------------------------===//

#ifndef AFL_BENCH_BENCHCOMMON_H
#define AFL_BENCH_BENCHCOMMON_H

#include "driver/Pipeline.h"
#include "interp/TraceAnalysis.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace afl {
namespace bench {

/// Runs the pipeline with traces; aborts the benchmark on failure.
inline driver::PipelineResult runTraced(const std::string &Name,
                                        const std::string &Source) {
  driver::PipelineOptions Options;
  Options.RecordTrace = true;
  driver::PipelineResult R = driver::runPipeline(Source, Options);
  if (!R.ok()) {
    std::fprintf(stderr, "%s: pipeline failed:\n%s\n", Name.c_str(),
                 R.Diags.str().c_str());
    std::exit(1);
  }
  if (R.Afl.ResultText != R.Reference.ResultText) {
    std::fprintf(stderr, "%s: A-F-L result mismatch: %s vs %s\n",
                 Name.c_str(), R.Afl.ResultText.c_str(),
                 R.Reference.ResultText.c_str());
    std::exit(1);
  }
  return R;
}

/// Prints "series,time,values" rows. Downsamples to about \p MaxPoints,
/// always keeping local maxima so peaks survive.
inline void printSeries(const char *Series,
                        const std::vector<interp::TracePoint> &Trace,
                        size_t MaxPoints = 400) {
  if (Trace.empty())
    return;
  size_t Stride = Trace.size() / MaxPoints + 1;
  for (size_t I = 0; I < Trace.size(); I += Stride) {
    size_t End = std::min(I + Stride, Trace.size());
    // Representative point: the maximum within the stride window.
    interp::TracePoint Best = Trace[I];
    for (size_t J = I; J != End; ++J)
      if (Trace[J].ValuesHeld > Best.ValuesHeld)
        Best = Trace[J];
    std::printf("%s,%llu,%llu\n", Series,
                static_cast<unsigned long long>(Best.Time),
                static_cast<unsigned long long>(Best.ValuesHeld));
  }
}

/// Prints the header line used by every figure benchmark.
inline void printFigureHeader(const char *Figure, const char *Workload) {
  std::printf("# %s — memory usage over time, %s\n", Figure, Workload);
  std::printf("# time = index in the sequence of memory operations "
              "(reads, writes, region allocs/frees)\n");
  std::printf("# values = storable values held in allocated regions "
              "(heap only, as in paper §6)\n");
  std::printf("series,time,values\n");
}

/// Prints where the analysis time went for one pipeline run, one stage
/// per "# stage-time" comment line (consumed by scripts the same way as
/// the "# ..." summary lines; see docs/OBSERVABILITY.md).
inline void printStageBreakdown(const driver::PipelineResult &R) {
  const driver::PipelineStats &S = R.Stats;
  auto Line = [](const char *Stage, double Seconds) {
    std::printf("# stage-time %-22s %10.3f ms\n", Stage, Seconds * 1e3);
  };
  Line("parse", S.ParseSeconds);
  Line("type-inference", S.TypeInferSeconds);
  Line("region-inference", S.RegionInferSeconds);
  Line("closure-analysis", S.ClosureSeconds);
  Line("constraint-gen", S.ConstraintGenSeconds);
  Line("solve", S.SolveSeconds);
  Line("run-conservative", S.RunConservativeSeconds);
  Line("run-afl", S.RunAflSeconds);
  Line("total", S.TotalSeconds);
  std::printf("# solver-work propagations=%llu choices=%llu "
              "backtracks=%llu\n",
              static_cast<unsigned long long>(R.Analysis.SolverPropagations),
              static_cast<unsigned long long>(R.Analysis.SolverChoices),
              static_cast<unsigned long long>(R.Analysis.SolverBacktracks));
}

/// Prints the summary comparison the figure captions quote, plus the
/// space-time products (integral of residency over time) and the
/// per-stage analysis time breakdown.
inline void printMaxSummary(const driver::PipelineResult &R) {
  std::printf("# Tofte/Talpin max = %llu, A-F-L max = %llu\n",
              static_cast<unsigned long long>(R.Conservative.S.MaxValues),
              static_cast<unsigned long long>(R.Afl.S.MaxValues));
  interp::TraceSummary TT = interp::summarizeTrace(R.Conservative.Trace);
  interp::TraceSummary AFL = interp::summarizeTrace(R.Afl.Trace);
  std::printf("# space-time product: T-T %llu (mean %.1f), "
              "A-F-L %llu (mean %.1f)\n",
              static_cast<unsigned long long>(TT.SpaceTime), TT.Mean,
              static_cast<unsigned long long>(AFL.SpaceTime), AFL.Mean);
  printStageBreakdown(R);
}

/// Renders the two memory-over-time curves as an ASCII plot, the
/// terminal rendition of the paper's figures. 'T' = Tofte/Talpin,
/// 'a' = A-F-L, '#' = both.
inline void printAsciiPlot(const std::vector<interp::TracePoint> &TT,
                           const std::vector<interp::TracePoint> &AFL,
                           unsigned Width = 72, unsigned Height = 20) {
  uint64_t MaxTime = 0, MaxVal = 1;
  for (const auto *Trace : {&TT, &AFL}) {
    for (const interp::TracePoint &P : *Trace) {
      MaxTime = std::max(MaxTime, P.Time);
      MaxVal = std::max(MaxVal, P.ValuesHeld);
    }
  }
  if (MaxTime == 0)
    return;

  // Rasterize: per column keep the max residency of each series.
  std::vector<uint64_t> ColTT(Width, 0), ColAFL(Width, 0);
  auto Raster = [&](const std::vector<interp::TracePoint> &Trace,
                    std::vector<uint64_t> &Col) {
    for (const interp::TracePoint &P : Trace) {
      size_t X = static_cast<size_t>((P.Time - 1) * Width / MaxTime);
      if (X >= Width)
        X = Width - 1;
      Col[X] = std::max(Col[X], P.ValuesHeld);
    }
  };
  Raster(TT, ColTT);
  Raster(AFL, ColAFL);

  std::printf("# %llu values -+\n", (unsigned long long)MaxVal);
  for (unsigned Row = Height; Row-- > 0;) {
    // A cell is filled if the series reaches this residency band.
    uint64_t Threshold = MaxVal * Row / Height;
    std::string Line;
    for (unsigned X = 0; X != Width; ++X) {
      bool T = ColTT[X] > Threshold;
      bool A = ColAFL[X] > Threshold;
      Line += T && A ? '#' : T ? 'T' : A ? 'a' : ' ';
    }
    std::printf("# |%s\n", Line.c_str());
  }
  std::printf("# +%s> time (%llu memory ops)\n",
              std::string(Width, '-').c_str(),
              (unsigned long long)MaxTime);
  std::printf("# legend: T = Tofte/Talpin, a = A-F-L, # = both\n");
}

} // namespace bench
} // namespace afl

#endif // AFL_BENCH_BENCHCOMMON_H
