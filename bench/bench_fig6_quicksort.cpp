//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 6: memory usage over time for Quicksort on a
/// 50-element random list. Expected shape: a constant-factor improvement
/// (paper measured max 600+ vs ~250 at this size, a ~2-3x gap), with the
/// characteristic dips where the A-F-L curve drops below the size of the
/// input list (the paper's "curious feature": cells are freed while the
/// recursion holds values on the evaluation stack, which is not counted).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "programs/Corpus.h"

using namespace afl;
using namespace afl::bench;

int main() {
  const int N = 50;
  driver::PipelineResult R =
      runTraced("fig6", programs::quicksortSource(N));
  printFigureHeader("Figure 6",
                    "Quicksort, 50-element list of random integers");
  printMaxSummary(R);
  std::printf("# input list size (values incl. spine cells): %d cells\n",
              2 * N + 1);
  printAsciiPlot(R.Conservative.Trace, R.Afl.Trace);
  printSeries("Tofte/Talpin", R.Conservative.Trace);
  printSeries("A-F-L", R.Afl.Trace);

  // The paper notes the A-F-L curve dips below the memory needed to store
  // the list itself. Report the minimum after the input is fully built.
  uint64_t Peak = 0;
  uint64_t MinAfterPeak = ~0ull;
  for (const interp::TracePoint &P : R.Afl.Trace) {
    if (P.ValuesHeld > Peak)
      Peak = P.ValuesHeld;
    if (Peak >= static_cast<uint64_t>(2 * N) &&
        P.ValuesHeld < MinAfterPeak)
      MinAfterPeak = P.ValuesHeld;
  }
  std::printf("# A-F-L minimum residency after the input exists: %llu\n",
              (unsigned long long)MinAfterPeak);
  return 0;
}
