//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 5: memory usage over time for the Appel example
/// [App92]. Expected shape: the T-T curve climbs to an O(n²) peak (every
/// intermediate list stays resident until the recursion unwinds); the
/// A-F-L curve stays at O(n) (each dead parameter list is freed before
/// the next is built), matching the paper's "asymptotic improvement"
/// class. Also prints the asymptotic sweep behind the O(n) vs O(n²)
/// claim.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "programs/Corpus.h"

using namespace afl;
using namespace afl::bench;

int main() {
  const int N = 25; // small input for a readable curve, as in §6
  driver::PipelineResult R =
      runTraced("fig5", programs::appelSource(N));
  printFigureHeader("Figure 5", ("Appel example, n = " + std::to_string(N))
                                    .c_str());
  printMaxSummary(R);
  printAsciiPlot(R.Conservative.Trace, R.Afl.Trace);
  printSeries("Tofte/Talpin", R.Conservative.Trace);
  printSeries("A-F-L", R.Afl.Trace);

  std::printf("\n# asymptotic sweep (max storable values held)\n");
  std::printf("n,afl_max,tt_max\n");
  for (int S : {12, 25, 50, 100, 200}) {
    driver::PipelineResult RS =
        runTraced("fig5-sweep", programs::appelSource(S));
    std::printf("%d,%llu,%llu\n", S,
                (unsigned long long)RS.Afl.S.MaxValues,
                (unsigned long long)RS.Conservative.S.MaxValues);
  }
  return 0;
}
