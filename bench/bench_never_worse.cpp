//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the paper's §6 guarantee — "the memory behavior of a program
/// annotated using our algorithm is never worse than that of the same
/// program annotated using the Tofte/Talpin algorithm" — over a sweep of
/// randomly generated well-typed programs, and reports aggregate
/// improvement factors.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/RandomProgram.h"

#include <cstdio>
#include <cstdlib>

using namespace afl;

int main() {
  const unsigned NumPrograms = 500;
  unsigned Violations = 0;
  unsigned StrictWins = 0;
  double SumRatio = 0;
  unsigned Counted = 0;

  for (unsigned Seed = 0; Seed != NumPrograms; ++Seed) {
    std::string Source = programs::generateRandomProgram(Seed);
    driver::PipelineResult R = driver::runPipeline(Source);
    if (!R.ok()) {
      std::fprintf(stderr, "seed %u: pipeline failed\n%s\n", Seed,
                   R.Diags.str().c_str());
      return 1;
    }
    if (R.Afl.ResultText != R.Reference.ResultText) {
      std::fprintf(stderr, "seed %u: result mismatch\n", Seed);
      return 1;
    }
    const interp::Stats &A = R.Afl.S;
    const interp::Stats &T = R.Conservative.S;
    if (A.MaxValues > T.MaxValues || A.MaxRegions > T.MaxRegions ||
        A.FinalValues > T.FinalValues) {
      ++Violations;
      std::fprintf(stderr, "seed %u: A-F-L WORSE than T-T (%llu vs %llu)\n",
                   Seed, (unsigned long long)A.MaxValues,
                   (unsigned long long)T.MaxValues);
    }
    if (A.MaxValues < T.MaxValues)
      ++StrictWins;
    if (T.MaxValues != 0) {
      SumRatio += double(A.MaxValues) / double(T.MaxValues);
      ++Counted;
    }
  }

  std::printf("never-worse sweep over %u random programs\n", NumPrograms);
  std::printf("violations:            %u\n", Violations);
  std::printf("strict improvements:   %u (%.1f%%)\n", StrictWins,
              100.0 * StrictWins / NumPrograms);
  std::printf("mean A-F-L/T-T max-residency ratio: %.3f\n",
              Counted ? SumRatio / Counted : 0.0);
  return Violations == 0 ? 0 : 1;
}
