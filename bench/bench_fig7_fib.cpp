//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 7: memory usage over time for naive recursive
/// Fibonacci (n = 10). Expected shape: constant-factor improvement — the
/// paper measured max 20 (T-T) vs 15 (A-F-L) at small n; intermediate
/// argument/result boxes are freed as soon as each addition completes.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "programs/Corpus.h"

using namespace afl;
using namespace afl::bench;

int main() {
  const int N = 10;
  driver::PipelineResult R = runTraced("fig7", programs::fibSource(N));
  printFigureHeader("Figure 7", "recursive Fibonacci, n = 10");
  printMaxSummary(R);
  printAsciiPlot(R.Conservative.Trace, R.Afl.Trace);
  printSeries("Tofte/Talpin", R.Conservative.Trace);
  printSeries("A-F-L", R.Afl.Trace);
  return 0;
}
