//===----------------------------------------------------------------------===//
///
/// \file
/// Backs the paper's §6/§7 performance claims with google-benchmark
/// microbenchmarks: "all of the examples we have tried are analyzed in a
/// matter of seconds"; closure analysis is worst-case exponential but
/// comparable to T-T in practice; constraint generation and solving run
/// in low-order polynomial time. Measures each phase separately on
/// programs of increasing size.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTContext.h"
#include "closure/ClosureAnalysis.h"
#include "completion/AflCompletion.h"
#include "constraints/ConstraintGen.h"
#include "driver/BatchRunner.h"
#include "driver/Pipeline.h"
#include "interp/Interp.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "solver/Solver.h"
#include "support/ArenaPool.h"
#include "types/TypeInference.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

using namespace afl;

namespace {

/// A synthetic program with ~K recursive functions and a nested-let
/// spine, used to scale analysis input size.
std::string chainProgram(int K) {
  std::string Src;
  for (int I = 0; I != K; ++I) {
    std::string F = "f" + std::to_string(I);
    std::string N = "n" + std::to_string(I);
    Src += "letrec " + F + " " + N + " = if " + N + " <= 0 then 0 else " +
           N + " + " + F + " (" + N + " - 1) in ";
  }
  Src += "let acc = 0 in ";
  for (int I = 0; I != K; ++I)
    Src += "let acc = acc + f" + std::to_string(I) + " 3 in ";
  Src += "acc";
  for (int I = 0; I != K + 1; ++I)
    Src += " end";
  for (int I = 0; I != K; ++I)
    Src += " end";
  return Src;
}

struct Front {
  ast::ASTContext Ctx;
  DiagnosticEngine Diags;
  const ast::Expr *Ast = nullptr;
  types::TypedProgram Typed;
};

std::unique_ptr<Front> frontend(const std::string &Source) {
  auto F = std::make_unique<Front>();
  F->Ast = parseExprOrDie(Source, F->Ctx);
  F->Typed = types::inferTypes(F->Ast, F->Ctx, F->Diags);
  assert(F->Typed.Success);
  return F;
}

void BM_ParseAndTypecheck(benchmark::State &State) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    ast::ASTContext Ctx;
    DiagnosticEngine Diags;
    const ast::Expr *E = parseExpr(Src, Ctx, Diags);
    types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
    benchmark::DoNotOptimize(T.Success);
  }
}
BENCHMARK(BM_ParseAndTypecheck)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_RegionInference(benchmark::State &State) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  for (auto _ : State) {
    auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
    benchmark::DoNotOptimize(Prog.get());
  }
}
BENCHMARK(BM_RegionInference)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ClosureAnalysis(benchmark::State &State) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  size_t Contexts = 0;
  for (auto _ : State) {
    closure::ClosureAnalysis CA(*Prog);
    benchmark::DoNotOptimize(CA.run());
    Contexts = CA.numContexts();
  }
  // §7: worst-case exponential, "comparable to T-T in practice" — the
  // context count is the growth driver; report it alongside the time.
  State.counters["contexts"] = static_cast<double>(Contexts);
}
BENCHMARK(BM_ClosureAnalysis)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Nested higher-order functions: each level passes a lambda downward,
/// multiplying the (expression, environment) contexts — the shape behind
/// the worst-case exponential bound of §7.
std::string nestedHofProgram(int K) {
  std::string Src = "let apply1 = fn f => f 1 in ";
  for (int I = 0; I != K; ++I)
    Src += "let h" + std::to_string(I) + " = fn x => apply1 (fn y => y + x) "
           "in ";
  std::string Sum = "0";
  for (int I = 0; I != K; ++I)
    Sum = "(" + Sum + " + h" + std::to_string(I) + " " + std::to_string(I) +
          ")";
  Src += Sum;
  for (int I = 0; I != K + 1; ++I)
    Src += " end";
  return Src;
}

void BM_ClosureAnalysis_NestedHOF(benchmark::State &State) {
  std::string Src = nestedHofProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  size_t Contexts = 0;
  for (auto _ : State) {
    closure::ClosureAnalysis CA(*Prog);
    benchmark::DoNotOptimize(CA.run());
    Contexts = CA.numContexts();
  }
  State.counters["contexts"] = static_cast<double>(Contexts);
}
BENCHMARK(BM_ClosureAnalysis_NestedHOF)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// The permuted-payload family (programs::permSource): two recursive
/// call sites permute an M-slot payload, so the exact analysis walks
/// the slot-permutation orbit — up to M! abstract environments per
/// node — while the widened analysis (`aflc --closure-widen`)
/// canonically recolors the invisible color classes and collapses the
/// orbit. The exact/widened pair is the before/after widening series
/// of BENCH_analysis.json; `converged` drops to 0 where the exact
/// analysis exhausts its stabilization cap.
void closureWidenSeries(benchmark::State &State, unsigned K) {
  std::string Src = programs::permSource(static_cast<int>(State.range(0)), 3);
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  closure::ClosureOptions Options;
  Options.Jobs = 1;
  Options.Widening = K;
  size_t Contexts = 0, Widened = 0;
  bool Converged = false;
  for (auto _ : State) {
    closure::ClosureAnalysis CA(*Prog, Options);
    Converged = CA.run();
    benchmark::DoNotOptimize(Converged);
    Contexts = CA.numContexts();
    Widened = CA.stats().WidenedClosures;
  }
  State.counters["contexts"] = static_cast<double>(Contexts);
  State.counters["widened"] = static_cast<double>(Widened);
  State.counters["converged"] = Converged ? 1 : 0;
}

void BM_ClosureExact_Perm(benchmark::State &State) {
  closureWidenSeries(State, /*K=*/0);
}
// M=7 exhausts the exact cap (5040 permutations x payload regions):
// kept in the series to *show* the cliff — converged=0 there.
BENCHMARK(BM_ClosureExact_Perm)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_ClosureWidened_Perm(benchmark::State &State) {
  closureWidenSeries(State, /*K=*/2);
}
BENCHMARK(BM_ClosureWidened_Perm)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

/// Closure-analysis stage time alone (the §3 fixpoint), over the same
/// chainProgram(K) series used for the solve benchmarks, extended to the
/// K=48 point of BENCH_solver.json. Tracked in BENCH_analysis.json.
void BM_Closure(benchmark::State &State) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  size_t Contexts = 0;
  for (auto _ : State) {
    closure::ClosureAnalysis CA(*Prog);
    benchmark::DoNotOptimize(CA.run());
    Contexts = CA.numContexts();
  }
  State.counters["contexts"] = static_cast<double>(Contexts);
}
BENCHMARK(BM_Closure)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

/// Parallel closure analysis (the BSP partition replay of
/// closure/ParallelFixpoint.cpp) against the same inputs as BM_Closure
/// and BM_ClosureAnalysis_NestedHOF. ParallelMinFrontier is lowered to 2
/// so the partitioned path runs even on modest frontiers — the point is
/// to measure the parallel machinery, not to let it bail to the inline
/// fallback. Real time, not CPU time: items run on pool threads.
void closureParallelSeries(benchmark::State &State, const std::string &Src,
                           unsigned Jobs) {
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  closure::ClosureOptions Options;
  Options.Jobs = Jobs;
  Options.ParallelMinFrontier = 2;
  size_t Contexts = 0, ParRounds = 0, Partitions = 0;
  for (auto _ : State) {
    closure::ClosureAnalysis CA(*Prog, Options);
    benchmark::DoNotOptimize(CA.run());
    Contexts = CA.numContexts();
    ParRounds = CA.stats().ParallelRounds;
    Partitions = CA.stats().Partitions;
  }
  State.counters["contexts"] = static_cast<double>(Contexts);
  State.counters["par_rounds"] = static_cast<double>(ParRounds);
  State.counters["partitions"] = static_cast<double>(Partitions);
}

void BM_ClosureParallel(benchmark::State &State) {
  closureParallelSeries(State, chainProgram(static_cast<int>(State.range(0))),
                        static_cast<unsigned>(State.range(1)));
}
BENCHMARK(BM_ClosureParallel)
    ->Args({32, 2})
    ->Args({32, 4})
    ->Args({48, 2})
    ->Args({48, 4})
    ->UseRealTime();

void BM_ClosureParallel_NestedHOF(benchmark::State &State) {
  closureParallelSeries(State,
                        nestedHofProgram(static_cast<int>(State.range(0))),
                        static_cast<unsigned>(State.range(1)));
}
BENCHMARK(BM_ClosureParallel_NestedHOF)
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 2})
    ->Args({16, 4})
    ->UseRealTime();

/// Constraint-generation stage time alone (no solve): consumes a
/// converged closure analysis, so this isolates the §4.2 table-driven
/// system construction. Tracked in BENCH_analysis.json.
void BM_ConstraintGen(benchmark::State &State) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  closure::ClosureAnalysis CA(*Prog);
  CA.run();
  size_t NumConstraints = 0;
  for (auto _ : State) {
    constraints::GenResult Gen = constraints::generateConstraints(*Prog, CA);
    benchmark::DoNotOptimize(Gen.NumContexts);
    NumConstraints = Gen.Sys.numConstraints();
  }
  State.counters["constraints"] = static_cast<double>(NumConstraints);
}
BENCHMARK(BM_ConstraintGen)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

/// Combined generation+solve with emission-time sharding: the system is
/// regenerated every iteration, so the measurement includes the
/// incremental union-find tracking and the shard finalization that the
/// sharded solve path consumes (no component discovery at solve time).
/// Compare against BM_CongenMonolithic — same generation, but the solve
/// ignores the shards and runs the monolithic simplify+count path.
void congenSeries(benchmark::State &State, bool UseShards) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  closure::ClosureAnalysis CA(*Prog);
  CA.run();
  solver::SolveOptions Options;
  Options.Jobs = 1;
  Options.UseShards = UseShards;
  size_t Shards = 0, Largest = 0;
  for (auto _ : State) {
    constraints::GenResult Gen = constraints::generateConstraints(*Prog, CA);
    solver::SolveResult Sol = solver::solve(Gen.Sys, Options);
    benchmark::DoNotOptimize(Sol.Sat);
    Shards = Gen.Sharding.Shards;
    Largest = Gen.Sharding.LargestShardConstraints;
  }
  State.counters["shards"] = static_cast<double>(Shards);
  State.counters["largest_shard"] = static_cast<double>(Largest);
}

void BM_CongenSharded(benchmark::State &State) {
  congenSeries(State, /*UseShards=*/true);
}
BENCHMARK(BM_CongenSharded)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void BM_CongenMonolithic(benchmark::State &State) {
  congenSeries(State, /*UseShards=*/false);
}
BENCHMARK(BM_CongenMonolithic)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void BM_ConstraintGenAndSolve(benchmark::State &State) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  closure::ClosureAnalysis CA(*Prog);
  CA.run();
  for (auto _ : State) {
    constraints::GenResult Gen =
        constraints::generateConstraints(*Prog, CA);
    solver::SolveResult Sol = solver::solve(Gen.Sys);
    benchmark::DoNotOptimize(Sol.Sat);
  }
}
BENCHMARK(BM_ConstraintGenAndSolve)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Solve-stage series: the same generated constraint system solved raw
/// (the pre-simplification §4.3 solver), with preprocessing, and with
/// preprocessing + parallel per-component solving. Prints a one-shot
/// constraint reduction-ratio report line and surfaces the graph sizes
/// as counters.
void solveSeries(benchmark::State &State,
                 const solver::SolveOptions &Options) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  closure::ClosureAnalysis CA(*Prog);
  CA.run();
  constraints::GenResult Gen = constraints::generateConstraints(*Prog, CA);
  solver::SolveResult Sol;
  for (auto _ : State) {
    Sol = solver::solve(Gen.Sys, Options);
    benchmark::DoNotOptimize(Sol.Sat);
  }
  State.counters["cons_before"] =
      static_cast<double>(Gen.Sys.numConstraints());
  if (Options.Simplify) {
    const solver::SimplifyStats &Simp = Sol.Simplify;
    State.counters["cons_after"] = static_cast<double>(Simp.ConstraintsAfter);
    State.counters["components"] = static_cast<double>(Simp.Components);
    // Benchmark calibration reruns this function; report each size once.
    static std::set<long> Reported;
    if (!Reported.insert(State.range(0)).second)
      return;
    std::printf("# solve-reduction K=%ld: %zu state vars -> %zu, "
                "%zu constraints -> %zu (ratio %.2f), %zu eq removed, "
                "%zu components (largest %zu), %zu emission shards "
                "(largest %zu cons, %zu shapes interned)\n",
                State.range(0), Simp.StateVarsBefore, Simp.StateVarsAfter,
                Simp.ConstraintsBefore, Simp.ConstraintsAfter,
                Simp.ConstraintsBefore
                    ? static_cast<double>(Simp.ConstraintsAfter) /
                          static_cast<double>(Simp.ConstraintsBefore)
                    : 0.0,
                Simp.EqRemoved, Simp.Components, Simp.LargestComponent,
                Gen.Sharding.Shards, Gen.Sharding.LargestShardConstraints,
                Gen.Sharding.InternedShapes);
  }
}

void BM_SolveRaw(benchmark::State &State) {
  solver::SolveOptions Options;
  Options.Simplify = false;
  solveSeries(State, Options);
}
BENCHMARK(BM_SolveRaw)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void BM_SolveSimplified(benchmark::State &State) {
  solver::SolveOptions Options;
  Options.Jobs = 1; // preprocessing only; components solved sequentially
  solveSeries(State, Options);
}
BENCHMARK(BM_SolveSimplified)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void BM_SolveSimplifiedParallel(benchmark::State &State) {
  solver::SolveOptions Options;
  Options.Jobs = 0;                  // all hardware threads
  Options.ParallelMinConstraints = 0; // measure the pool even when small
  solveSeries(State, Options);
}
BENCHMARK(BM_SolveSimplifiedParallel)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->UseRealTime();

// Packed bitvector domains (the default, 21 three-bit state lanes and
// 32 two-bit boolean lanes per 64-bit word) vs the byte-per-variable
// oracle representation (`aflc --no-packed-domains`). Same sequential
// simplified solve either side; the pair is the before/after series of
// BENCH_solver.json.
void BM_SolvePacked(benchmark::State &State) {
  solver::SolveOptions Options;
  Options.Jobs = 1;
  Options.PackedDomains = true;
  solveSeries(State, Options);
}
BENCHMARK(BM_SolvePacked)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void BM_SolveByteDomains(benchmark::State &State) {
  solver::SolveOptions Options;
  Options.Jobs = 1;
  Options.PackedDomains = false;
  solveSeries(State, Options);
}
BENCHMARK(BM_SolveByteDomains)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

// The raw (unsimplified) solve scans full-size domain arrays every
// iteration, so it shows the representation effect at its largest.
void BM_SolveRawByteDomains(benchmark::State &State) {
  solver::SolveOptions Options;
  Options.Simplify = false;
  Options.PackedDomains = false;
  solveSeries(State, Options);
}
BENCHMARK(BM_SolveRawByteDomains)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

/// Instrumented-run stage under one backend: a scaled builtin program is
/// analyzed once (A-F-L completion), then executed repeatedly. Family 0
/// is @fib (call/step heavy), family 1 is @appel (allocation heavy — the
/// paper's Fig. 1 example, stressing the region allocator). The
/// BM_RunTree / BM_RunVm pair is the before/after of BENCH_interp.json.
void runSeries(benchmark::State &State, interp::BackendKind Backend) {
  int Family = static_cast<int>(State.range(0));
  int N = static_cast<int>(State.range(1));
  std::string Src =
      Family == 0 ? programs::fibSource(N) : programs::appelSource(N);
  State.SetLabel((Family == 0 ? "fib " : "appel ") + std::to_string(N));
  auto F = frontend(Src);
  auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
  completion::AflStats Stats;
  regions::Completion C = completion::aflCompletion(*Prog, &Stats);
  interp::RunOptions Options;
  Options.Backend = Backend;
  uint64_t Steps = 0, MemOps = 0;
  for (auto _ : State) {
    interp::RunResult R = interp::run(*Prog, C, Options);
    benchmark::DoNotOptimize(R.Ok);
    Steps = R.S.Steps;
    MemOps = R.S.Time;
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.counters["mem_ops"] = static_cast<double>(MemOps);
}

void BM_RunTree(benchmark::State &State) {
  runSeries(State, interp::BackendKind::Tree);
}
BENCHMARK(BM_RunTree)
    ->Args({0, 18})
    ->Args({0, 22})
    ->Args({0, 25})
    ->Args({1, 200})
    ->Args({1, 800});

void BM_RunVm(benchmark::State &State) {
  runSeries(State, interp::BackendKind::Vm);
}
BENCHMARK(BM_RunVm)
    ->Args({0, 18})
    ->Args({0, 22})
    ->Args({0, 25})
    ->Args({1, 200})
    ->Args({1, 800});

void BM_FullAnalysis_Corpus(benchmark::State &State) {
  auto Corpus = programs::table2Corpus();
  const programs::BenchProgram &P =
      Corpus[static_cast<size_t>(State.range(0))];
  State.SetLabel(P.Name);
  auto F = frontend(P.Source);
  for (auto _ : State) {
    auto Prog = regions::inferRegions(F->Ast, F->Ctx, F->Typed, F->Diags);
    completion::AflStats Stats;
    regions::Completion C = completion::aflCompletion(*Prog, &Stats);
    benchmark::DoNotOptimize(C.numOps());
  }
}
BENCHMARK(BM_FullAnalysis_Corpus)->DenseRange(0, 4);

/// End-to-end pipeline with the per-stage breakdown surfaced as
/// counters: instead of one opaque total, each stage's share of the
/// wall time is reported (in milliseconds, averaged over iterations).
void BM_FullPipeline_Stages(benchmark::State &State) {
  std::string Src = chainProgram(static_cast<int>(State.range(0)));
  driver::PipelineStats Agg;
  uint64_t Iters = 0;
  for (auto _ : State) {
    driver::PipelineResult R = driver::runPipeline(Src);
    benchmark::DoNotOptimize(R.Ok);
    Agg.accumulate(R.Stats);
    ++Iters;
  }
  auto Ms = [&](double Seconds) {
    return Seconds * 1e3 / static_cast<double>(Iters ? Iters : 1);
  };
  State.counters["parse_ms"] = Ms(Agg.ParseSeconds);
  State.counters["regions_ms"] = Ms(Agg.RegionInferSeconds);
  State.counters["closure_ms"] = Ms(Agg.ClosureSeconds);
  State.counters["congen_ms"] = Ms(Agg.ConstraintGenSeconds);
  State.counters["solve_ms"] = Ms(Agg.SolveSeconds);
  State.counters["run_ms"] =
      Ms(Agg.RunConservativeSeconds + Agg.RunAflSeconds +
         Agg.RunReferenceSeconds);
}
BENCHMARK(BM_FullPipeline_Stages)->Arg(4)->Arg(8)->Arg(16);

/// Batch throughput: the whole small corpus through the thread-pooled
/// runner at increasing worker counts — the parallel hot path a service
/// tier would exercise.
void BM_BatchThroughput(benchmark::State &State) {
  // Replicate the corpus so the queue is deeper than the longest single
  // item — otherwise the critical path is one program and adding
  // workers cannot help.
  std::vector<driver::BatchItem> Work;
  for (int Round = 0; Round != 8; ++Round)
    for (const programs::BenchProgram &P : programs::smallCorpus())
      Work.push_back({P.Name + "#" + std::to_string(Round), P.Source, ""});
  unsigned Threads = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    driver::BatchResult B =
        driver::runBatch(Work, driver::PipelineOptions(), Threads);
    benchmark::DoNotOptimize(B.NumOk);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Work.size()));
}
// Real time, not CPU time: the work happens on pool threads, so the
// main thread's CPU clock would make the rate meaningless.
BENCHMARK(BM_BatchThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Arena churn of repeated per-item context construction (the batch and
/// server allocation pattern): the full front half over the small
/// corpus, with the process-wide arena pool on (arg 1) or off (arg 0).
/// Counters surface the reuse the pool achieves; peak RSS is process-
/// wide and monotonic, so the pooled/unpooled RSS comparison lives in
/// BENCH_solver.json (two separate `aflc --batch` processes).
void BM_FrontEndArenaPool(benchmark::State &State) {
  bool Pooled = State.range(0) != 0;
  bool Was = ArenaPool::globalEnabled();
  ArenaPool::setGlobalEnabled(Pooled);
  ArenaPool::global().clear();
  std::vector<std::string> Sources;
  for (const programs::BenchProgram &P : programs::smallCorpus())
    Sources.push_back(P.Source);
  for (auto _ : State) {
    for (const std::string &Src : Sources) {
      DiagnosticEngine Diags;
      driver::FrontEnd F = driver::runFrontEnd(Src, Diags);
      benchmark::DoNotOptimize(F.Prog);
    }
  }
  ArenaPool::Stats S = ArenaPool::global().stats();
  State.counters["pool_hits"] = static_cast<double>(S.Hits);
  State.counters["pool_misses"] = static_cast<double>(S.Misses);
  State.counters["retained_kb"] = static_cast<double>(S.RetainedBytes) / 1024;
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Sources.size()));
  ArenaPool::setGlobalEnabled(Was);
  State.SetLabel(Pooled ? "pool on" : "pool off");
}
BENCHMARK(BM_FrontEndArenaPool)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
