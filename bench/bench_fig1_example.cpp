//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 1 of the paper on Example 1.1
/// ("(let z = (2,3) in fn y => (fst z, y) end) 5"):
///   (a) the conservative completion (same region lifetimes as T-T),
///   (b) the completion our constraint solver computes (the paper's
///       optimal one: p6 freed right after the unused 3 is written, the
///       pair region allocated only after both components exist, the
///       closure region freed with free_app),
///   (c) region lifetimes against the sequence of memory operations.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "programs/Corpus.h"

using namespace afl;
using namespace afl::bench;

int main() {
  driver::PipelineResult R =
      runTraced("fig1", programs::example11Source());

  std::printf("=== Figure 1(a): conservative completion "
              "(Tofte/Talpin lifetimes) ===\n%s\n",
              R.printConservative().c_str());
  std::printf("=== Figure 1(b): A-F-L completion ===\n%s\n",
              R.printAfl().c_str());

  std::printf("=== Figure 1(c): values held per memory operation ===\n");
  std::printf("series,time,values\n");
  printSeries("Tofte/Talpin", R.Conservative.Trace, 1000);
  printSeries("A-F-L", R.Afl.Trace, 1000);

  // Region lifetimes on the memory-operation time axis (the solid vs
  // dotted lines of Fig. 1c).
  std::printf("\n=== region lifetimes (alloc..free; 'end' = program exit) "
              "===\n");
  interp::RunOptions RO;
  RO.RecordLifetimes = true;
  for (const char *Name : {"Tofte/Talpin", "A-F-L"}) {
    const regions::Completion &C =
        std::string(Name) == "A-F-L" ? R.AflC : R.ConservativeC;
    interp::RunResult Run = interp::run(*R.Prog, C, RO);
    if (!Run.Ok) {
      std::fprintf(stderr, "lifetime run failed: %s\n", Run.Error.c_str());
      return 1;
    }
    std::printf("%s:\n", Name);
    for (size_t I = 0; I != Run.Lifetimes.size(); ++I) {
      const interp::RegionLifetime &L = Run.Lifetimes[I];
      if (L.AllocTime == 0) {
        std::printf("  region %-3zu never allocated\n", I);
        continue;
      }
      if (L.FreeTime == 0)
        std::printf("  region %-3zu [%3llu .. end]  (%llu values at exit)\n",
                    I, (unsigned long long)L.AllocTime,
                    (unsigned long long)L.ValuesAtFree);
      else
        std::printf("  region %-3zu [%3llu .. %3llu]  (%llu values freed)\n",
                    I, (unsigned long long)L.AllocTime,
                    (unsigned long long)L.FreeTime,
                    (unsigned long long)L.ValuesAtFree);
    }
  }

  std::printf("\n# result: %s\n", R.Afl.ResultText.c_str());
  std::printf("# T-T: maxregions=%llu maxvalues=%llu   "
              "A-F-L: maxregions=%llu maxvalues=%llu\n",
              (unsigned long long)R.Conservative.S.MaxRegions,
              (unsigned long long)R.Conservative.S.MaxValues,
              (unsigned long long)R.Afl.S.MaxRegions,
              (unsigned long long)R.Afl.S.MaxValues);
  return 0;
}
