//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 2 of the paper: five memory metrics for each of
/// Appel(100), Quicksort(500), Fibonacci(6), Randlist(25) and Fac(10),
/// under the A-F-L completion and the Tofte/Talpin (conservative)
/// baseline.
///
/// Expected shape (paper Table 2): A-F-L ≤ T-T everywhere; asymptotic gap
/// on Appel ((1) and (4)); identical row (3) (value allocations are not
/// affected by completion placement); A-F-L row (5) is tiny (only the
/// observable result stays resident).
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "programs/Corpus.h"

#include <cstdio>
#include <cstdlib>

using namespace afl;

int main() {
  std::printf("Table 2 — summary of results (A-F-L vs Tofte/Talpin)\n");
  std::printf("(1) max regions allocated  (2) total region allocations\n");
  std::printf("(3) total value allocations  (4) max storable values held\n");
  std::printf("(5) values stored in final memory\n\n");
  std::printf("%-16s %22s %22s %22s %22s %22s\n", "", "(1)", "(2)", "(3)",
              "(4)", "(5)");
  std::printf("%-16s %10s %11s %10s %11s %10s %11s %10s %11s %10s %11s\n",
              "program", "A-F-L", "T-T", "A-F-L", "T-T", "A-F-L", "T-T",
              "A-F-L", "T-T", "A-F-L", "T-T");

  for (const programs::BenchProgram &P : programs::table2Corpus()) {
    driver::PipelineResult R = driver::runPipeline(P.Source);
    if (!R.ok()) {
      std::fprintf(stderr, "%s failed:\n%s\n", P.Name.c_str(),
                   R.Diags.str().c_str());
      return 1;
    }
    if (R.Afl.ResultText != R.Reference.ResultText ||
        R.Conservative.ResultText != R.Reference.ResultText) {
      std::fprintf(stderr, "%s: result mismatch\n", P.Name.c_str());
      return 1;
    }
    const interp::Stats &A = R.Afl.S;
    const interp::Stats &T = R.Conservative.S;
    std::printf(
        "%-16s %10llu %11llu %10llu %11llu %10llu %11llu %10llu %11llu "
        "%10llu %11llu\n",
        P.Name.c_str(), (unsigned long long)A.MaxRegions,
        (unsigned long long)T.MaxRegions,
        (unsigned long long)A.TotalRegionAllocs,
        (unsigned long long)T.TotalRegionAllocs,
        (unsigned long long)A.TotalValueAllocs,
        (unsigned long long)T.TotalValueAllocs,
        (unsigned long long)A.MaxValues, (unsigned long long)T.MaxValues,
        (unsigned long long)A.FinalValues,
        (unsigned long long)T.FinalValues);
  }
  return 0;
}
