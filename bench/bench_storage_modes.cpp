//===----------------------------------------------------------------------===//
///
/// \file
/// Storage modes vs completions (§6: "our annotations are orthogonal to
/// the storage mode analysis ... the target programs contain both").
/// Measures the conservative (T-T) completion with and without atbot
/// resets, against the A-F-L completion, over the corpus.
///
/// Expected finding (documented in EXPERIMENTS.md): with fine-grained
/// region inference (fresh regions per value, polymorphic recursion),
/// in-scope reset opportunities are rare, so storage modes recover
/// little of the gap that early frees close — supporting the paper's
/// position that completions improve on what the T-T toolchain already
/// had.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "completion/Conservative.h"
#include "completion/StorageModes.h"
#include "interp/Interp.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <cstdio>

using namespace afl;

int main() {
  std::printf("storage modes — max values held (and atbot resets fired)\n");
  std::printf("%-16s %10s %14s %10s %8s %8s\n", "program", "T-T",
              "T-T+modes", "A-F-L", "atbot", "resets");

  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    ast::ASTContext Ctx;
    DiagnosticEngine Diags;
    const ast::Expr *E = parseExpr(P.Source, Ctx, Diags);
    types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
    auto Prog = regions::inferRegions(E, Ctx, T, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s: inference failed\n", P.Name.c_str());
      return 1;
    }

    regions::Completion Cons = completion::conservativeCompletion(*Prog);
    regions::Completion Afl = completion::aflCompletion(*Prog);
    completion::StorageModes Modes = completion::inferStorageModes(*Prog);

    interp::RunResult TT = interp::run(*Prog, Cons);
    interp::RunOptions RO;
    RO.Modes = &Modes;
    interp::RunResult TTM = interp::run(*Prog, Cons, RO);
    interp::RunResult AFL = interp::run(*Prog, Afl);
    if (!TT.Ok || !TTM.Ok || !AFL.Ok) {
      std::fprintf(stderr, "%s: run failed: %s%s%s\n", P.Name.c_str(),
                   TT.Error.c_str(), TTM.Error.c_str(), AFL.Error.c_str());
      return 1;
    }
    if (TTM.ResultText != TT.ResultText) {
      std::fprintf(stderr, "%s: storage modes changed the result!\n",
                   P.Name.c_str());
      return 1;
    }
    std::printf("%-16s %10llu %14llu %10llu %8zu %8llu\n", P.Name.c_str(),
                (unsigned long long)TT.S.MaxValues,
                (unsigned long long)TTM.S.MaxValues,
                (unsigned long long)AFL.S.MaxValues, Modes.numAtBot(),
                (unsigned long long)TTM.S.Resets);
  }
  return 0;
}
