//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8: memory usage over time while generating a
/// 25-element list of random integers. Expected shape: constant-factor
/// improvement (paper: max 161 T-T vs 85 A-F-L) — the generator's seed
/// state (pairs and intermediate LCG arithmetic) is freed eagerly, while
/// the stack discipline keeps every intermediate seed alive until the
/// recursion finishes.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "programs/Corpus.h"

using namespace afl;
using namespace afl::bench;

int main() {
  const int N = 25;
  driver::PipelineResult R =
      runTraced("fig8", programs::randlistSource(N));
  printFigureHeader("Figure 8",
                    "generate a 25-element list of random integers");
  printMaxSummary(R);
  printAsciiPlot(R.Conservative.Trace, R.Afl.Trace);
  printSeries("Tofte/Talpin", R.Conservative.Trace);
  printSeries("A-F-L", R.Afl.Trace);
  return 0;
}
