//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation study over the completion's design choices (DESIGN.md):
/// which of the A-F-L ingredients buys how much memory? Configurations:
///
///   full        alloc late + free early + free_app (the paper's system)
///   no-simplify full, but solving the raw constraint system (skips the
///               union-find collapse + component decomposition; must
///               reproduce the `full` column exactly)
///   no-freeapp  drop the free_app choice point (§1)
///   lex-alloc   allocation only at the letregion (alloc still explicit)
///   lex-free    deallocation only at the letregion
///   lexical     both lexical = the Tofte/Talpin discipline
///
/// Reported: max storable values held for each corpus program.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "completion/Conservative.h"
#include "interp/Interp.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <cstdio>
#include <cstdlib>

using namespace afl;

namespace {

struct Config {
  const char *Name;
  constraints::GenOptions Options;
  solver::SolveOptions Solve;
};

uint64_t maxValuesUnder(const regions::RegionProgram &Prog,
                        const constraints::GenOptions &Options,
                        const solver::SolveOptions &Solve, const char *Name,
                        const char *Program) {
  completion::AflStats Stats;
  regions::Completion C = completion::aflCompletion(Prog, &Stats, Options,
                                                    Solve);
  if (!Stats.Solved) {
    std::fprintf(stderr, "%s/%s: solver fell back to conservative\n",
                 Program, Name);
  }
  interp::RunResult R = interp::run(Prog, C);
  if (!R.Ok) {
    std::fprintf(stderr, "%s/%s: run failed: %s\n", Program, Name,
                 R.Error.c_str());
    std::exit(1);
  }
  return R.S.MaxValues;
}

} // namespace

int main() {
  Config Configs[6];
  Configs[0] = {"full", {}, {}};
  Configs[1] = {"no-simplify", {}, {}};
  Configs[1].Solve.Simplify = false;
  Configs[2] = {"no-freeapp", {}, {}};
  Configs[2].Options.FreeApp = false;
  Configs[3] = {"lex-alloc", {}, {}};
  Configs[3].Options.LateAlloc = false;
  Configs[4] = {"lex-free", {}, {}};
  Configs[4].Options.EarlyFree = false;
  Configs[4].Options.FreeApp = false;
  Configs[5] = {"lexical", {}, {}};
  Configs[5].Options.LateAlloc = false;
  Configs[5].Options.EarlyFree = false;
  Configs[5].Options.FreeApp = false;

  std::printf("ablation — max storable values held\n");
  std::printf("%-16s", "program");
  for (const Config &C : Configs)
    std::printf(" %11s", C.Name);
  std::printf(" %11s\n", "T-T");

  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    ast::ASTContext Ctx;
    DiagnosticEngine Diags;
    const ast::Expr *E = parseExpr(P.Source, Ctx, Diags);
    types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
    auto Prog = regions::inferRegions(E, Ctx, T, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s: inference failed\n", P.Name.c_str());
      return 1;
    }

    std::printf("%-16s", P.Name.c_str());
    for (const Config &C : Configs)
      std::printf(" %11llu",
                  (unsigned long long)maxValuesUnder(*Prog, C.Options,
                                                     C.Solve, C.Name,
                                                     P.Name.c_str()));
    regions::Completion Cons = completion::conservativeCompletion(*Prog);
    interp::RunResult R = interp::run(*Prog, Cons);
    std::printf(" %11llu\n", (unsigned long long)R.S.MaxValues);
  }
  return 0;
}
