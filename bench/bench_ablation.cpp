//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation study over the completion's design choices (DESIGN.md):
/// which of the A-F-L ingredients buys how much memory? Configurations:
///
///   full        alloc late + free early + free_app (the paper's system)
///   no-simplify full, but solving the raw constraint system (skips the
///               union-find collapse + component decomposition; must
///               reproduce the `full` column exactly)
///   no-freeapp  drop the free_app choice point (§1)
///   lex-alloc   allocation only at the letregion (alloc still explicit)
///   lex-free    deallocation only at the letregion
///   lexical     both lexical = the Tofte/Talpin discipline
///   widen-2     full, with the closure analysis context-set widening
///               at bound 2 (aflc --closure-widen=2) — the differential
///               precision column for the widened analysis
///
/// Reported: max storable values held for each corpus program.
///
//===----------------------------------------------------------------------===//

#include "ast/ASTContext.h"
#include "completion/AflCompletion.h"
#include "completion/Conservative.h"
#include "interp/Interp.h"
#include "parser/Parser.h"
#include "programs/Corpus.h"
#include "regions/RegionInference.h"
#include "types/TypeInference.h"

#include <cstdio>
#include <cstdlib>

using namespace afl;

namespace {

struct Config {
  const char *Name;
  constraints::GenOptions Options;
  solver::SolveOptions Solve;
  closure::ClosureOptions Closure;
};

uint64_t maxValuesUnder(const regions::RegionProgram &Prog,
                        const constraints::GenOptions &Options,
                        const solver::SolveOptions &Solve,
                        const closure::ClosureOptions &Closure,
                        const char *Name, const char *Program) {
  completion::AflStats Stats;
  regions::Completion C = completion::aflCompletion(Prog, &Stats, Options,
                                                    Solve, Closure);
  if (!Stats.Solved) {
    std::fprintf(stderr, "%s/%s: solver fell back to conservative\n",
                 Program, Name);
  }
  interp::RunResult R = interp::run(Prog, C);
  if (!R.Ok) {
    std::fprintf(stderr, "%s/%s: run failed: %s\n", Program, Name,
                 R.Error.c_str());
    std::exit(1);
  }
  return R.S.MaxValues;
}

} // namespace

int main() {
  Config Configs[7];
  Configs[0] = {"full", {}, {}, {}};
  Configs[1] = {"no-simplify", {}, {}, {}};
  Configs[1].Solve.Simplify = false;
  Configs[2] = {"no-freeapp", {}, {}, {}};
  Configs[2].Options.FreeApp = false;
  Configs[3] = {"lex-alloc", {}, {}, {}};
  Configs[3].Options.LateAlloc = false;
  Configs[4] = {"lex-free", {}, {}, {}};
  Configs[4].Options.EarlyFree = false;
  Configs[4].Options.FreeApp = false;
  Configs[5] = {"lexical", {}, {}, {}};
  Configs[5].Options.LateAlloc = false;
  Configs[5].Options.EarlyFree = false;
  Configs[5].Options.FreeApp = false;
  // Widened closure analysis (--closure-widen=2): how much memory the
  // context-set merge costs at runtime relative to `full`.
  Configs[6] = {"widen-2", {}, {}, {}};
  Configs[6].Closure.Widening = 2;
  // Every column is about a *deliberate* knob: pin the env-sensitive
  // closure defaults so AFL_CLOSURE_WIDEN / AFL_CLOSURE_JOBS cannot
  // silently change what a column measures.
  for (Config &C : Configs) {
    C.Closure.Jobs = 1;
    if (&C != &Configs[6])
      C.Closure.Widening = 0;
  }

  std::printf("ablation — max storable values held\n");
  std::printf("%-16s", "program");
  for (const Config &C : Configs)
    std::printf(" %11s", C.Name);
  std::printf(" %11s\n", "T-T");

  for (const programs::BenchProgram &P : programs::smallCorpus()) {
    ast::ASTContext Ctx;
    DiagnosticEngine Diags;
    const ast::Expr *E = parseExpr(P.Source, Ctx, Diags);
    types::TypedProgram T = types::inferTypes(E, Ctx, Diags);
    auto Prog = regions::inferRegions(E, Ctx, T, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s: inference failed\n", P.Name.c_str());
      return 1;
    }

    std::printf("%-16s", P.Name.c_str());
    for (const Config &C : Configs)
      std::printf(" %11llu",
                  (unsigned long long)maxValuesUnder(*Prog, C.Options,
                                                     C.Solve, C.Closure,
                                                     C.Name,
                                                     P.Name.c_str()));
    regions::Completion Cons = completion::conservativeCompletion(*Prog);
    interp::RunResult R = interp::run(*Prog, Cons);
    std::printf(" %11llu\n", (unsigned long long)R.S.MaxValues);
  }
  return 0;
}
